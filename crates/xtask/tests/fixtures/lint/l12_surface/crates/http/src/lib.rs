//! L12 fixture, boundary side: the mapping misses `BadRequest`, the
//! `overloaded` call disagrees with the documented status, and
//! `mystery` is not in the DESIGN.md table at all (whose `bad_request`
//! row in turn matches no call site).

pub fn respond(err: ServeError) -> Response {
    match err {
        ServeError::Overloaded => Response::error(500, "overloaded", "throttled"),
        ServeError::ShuttingDown => Response::error(503, "shutting_down", "draining"),
    }
}

pub fn reject() -> Response {
    Response::error(404, "mystery", "no such thing")
}
