//! L12 fixture, fault-enum side: three public variants the HTTP
//! boundary is obliged to map one by one.

pub enum ServeError {
    Overloaded,
    ShuttingDown,
    BadRequest,
}
