//! L8 fixture: a probing path reaches a probe-free crate. `estimate`
//! never mentions `try_query` itself — the taint arrives transitively
//! through `refresh` — so only the workspace fixpoint can see it.

pub fn refresh(db: &Db, q: &Query) -> u32 {
    db.try_query(q)
}

pub fn estimate(db: &Db, q: &Query) -> u32 {
    refresh(db, q) * 2
}
