//! L5 fixture: a guard held across a blocking source probe. The probe
//! can spend unbounded (virtual) time retrying; every other thread
//! touching the memo serializes behind it.

pub struct Memo {
    // aimq-lock: family(memo-state) -- fixture: guards the memo table
    state: Mutex<u32>,
}

impl Memo {
    // aimq-probe: entry -- fixture: sanctioned forward to the boundary
    pub fn probe_through(&self, q: &Query) -> u32 {
        let guard = lock(&self.state);
        let fresh = self.inner.try_query(q);
        *guard + fresh
    }
}
