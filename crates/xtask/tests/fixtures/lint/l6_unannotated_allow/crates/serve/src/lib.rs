//! Suppressed twin of `l6_unannotated`: the unannotated atomic and its
//! operation both carry a justification.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Meter {
    hits: AtomicU64, // aimq-lint: allow(atomics-audit) -- fixture: role migration pending
}

impl Meter {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed); // aimq-lint: allow(atomics-audit) -- fixture: role migration pending
    }
}
