//! L13 fixture: a fault value is constructed and silently dropped —
//! the degradation report never hears about it — and a stale
//! fault-sink annotation excuses a line that constructs nothing.

pub enum QueryError {
    Timeout,
}

pub fn degrade(budget: u64) -> u64 {
    let verdict = QueryError::Timeout;
    budget / 2
}

// aimq-fault: sink -- fixture: nothing on the next line constructs a fault
pub fn plain() -> u64 {
    7
}
