//! Suppressed twin of `l8_guard`: the same indirect probe under a
//! guard, justified at the call site.

pub struct Memo {
    // aimq-lock: family(memo-state) -- fixture: guards the memo table
    state: Mutex<u32>,
}

impl Memo {
    // aimq-probe: entry -- fixture: sanctioned forward to the boundary
    pub fn refresh(&self, q: &Query) -> u32 {
        self.inner.try_query(q)
    }

    pub fn cached(&self, q: &Query) -> u32 {
        let guard = lock(&self.state);
        *guard + self.refresh(q) // aimq-lint: allow(probe-effect) -- fixture: probe is a bounded in-memory stub
    }
}
