//! Suppressed twin of `l7_upward`: the upward dependency is justified
//! at both the manifest line and the import site.

use aimq_serve::QueryServer; // aimq-lint: allow(layering) -- fixture: dev-only harness import

pub fn escalate(server: &QueryServer) -> usize {
    server.queue_depth()
}
