//! Fixed twin of `l12_surface`, fault-enum side: unchanged — the
//! fixes all live at the boundary and in the DESIGN.md table.

pub enum ServeError {
    Overloaded,
    ShuttingDown,
    BadRequest,
}
