//! Fixed twin of `l12_surface`: every variant has an explicit arm,
//! every machine code is in the DESIGN.md table at the status the
//! call actually sends, and every table row has a call site.

pub fn respond(err: ServeError) -> Response {
    match err {
        ServeError::Overloaded => Response::error(429, "overloaded", "throttled"),
        ServeError::ShuttingDown => Response::error(503, "shutting_down", "draining"),
        ServeError::BadRequest => Response::error(400, "bad_request", "malformed"),
    }
}
