//! L8 fixture: an unannotated direct `try_query` caller, plus a stale
//! probe-entry annotation pointing at a function that no longer probes
//! (the probe moved out from under the comment).

pub fn fetch(db: &Db, q: &Query) -> u32 {
    db.try_query(q)
}

// aimq-probe: entry -- fixture: this claim is stale, `summarize` no longer probes
pub fn summarize(db: &Db) -> u32 {
    db.len()
}
