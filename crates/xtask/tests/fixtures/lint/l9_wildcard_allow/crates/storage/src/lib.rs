//! Suppressed twin of `l9_wildcard`: the wildcard is justified (here
//! every non-terminal fault really is equivalent).

pub enum QueryError {
    Unavailable,
    RateLimited,
}

pub fn classify(error: QueryError) -> u32 {
    match error {
        QueryError::Unavailable => 1,
        _ => 0, // aimq-lint: allow(result-discipline) -- fixture: all retryable faults rank equal
    }
}
