//! L10 fixture: unchecked arithmetic on a tracked counter. In release
//! builds `+=` wraps silently; the meter then underreports by 2^64.

pub struct Meter {
    // aimq-arith: counter -- fixture: monotone event tally
    hits: u64,
}

impl Meter {
    pub fn bump(&mut self) {
        self.hits += 1;
    }

    pub fn combined(&self, other: &Meter) -> u64 {
        self.hits + other.hits
    }
}
