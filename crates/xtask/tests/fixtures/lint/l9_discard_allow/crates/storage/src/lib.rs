//! Suppressed twin of `l9_discard`: each discard individually
//! justified; the bare call now consumes its result.

pub enum QueryError {
    Unavailable,
}

// aimq-probe: entry -- fixture: sanctioned forward to the boundary
pub fn risky(db: &Db, q: &Query) -> Result<Page, QueryError> {
    db.try_query(q)
}

pub fn caller(db: &Db, q: &Query) -> bool {
    let _ = risky(db, q); // aimq-lint: allow(result-discipline) -- fixture: warm-up probe, outcome irrelevant
    risky(db, q).ok(); // aimq-lint: allow(result-discipline) -- fixture: best-effort prefetch
    risky(db, q).is_ok()
}
