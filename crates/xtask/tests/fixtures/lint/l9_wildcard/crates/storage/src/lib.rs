//! L9 fixture: a wildcard arm in a match over a fault enum. A newly
//! added error variant silently falls into the `_` bucket instead of
//! forcing the author to decide how to handle it.

pub enum QueryError {
    Unavailable,
    RateLimited,
}

pub fn classify(error: QueryError) -> u32 {
    match error {
        QueryError::Unavailable => 1,
        _ => 0,
    }
}
