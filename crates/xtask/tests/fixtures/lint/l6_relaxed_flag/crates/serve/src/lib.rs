//! L6 fixture: a flag-role atomic stored with `Ordering::Relaxed`. The
//! Acquire load on the read side then has no Release store to pair
//! with, so the flag publishes nothing.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Shutdown {
    // aimq-atomic: flag -- fixture: publishes the stop decision
    stop: AtomicBool,
}

impl Shutdown {
    pub fn request(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    pub fn observed(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}
