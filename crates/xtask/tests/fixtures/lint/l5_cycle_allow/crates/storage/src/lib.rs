//! Suppressed twin of `l5_cycle`: the same inverted nesting, justified
//! at the acquisition that closes the cycle in this file.

pub struct Fwd {
    // aimq-lock: family(alpha) -- fixture: first family in the forward order
    left: Mutex<u32>,
    // aimq-lock: family(beta) -- fixture: second family in the forward order
    right: Mutex<u32>,
}

impl Fwd {
    pub fn forward(&self) -> u32 {
        let l = lock(&self.left);
        let r = lock(&self.right); // aimq-lint: allow(lock-discipline) -- fixture: inversion guarded by an external token
        *l + *r
    }
}
