//! Suppressed twin of `l5_cycle`: the reverse-order half, justified at
//! the acquisition that closes the cycle in this file.

pub struct Rev {
    // aimq-lock: family(beta) -- fixture: first family in the reverse order
    right: Mutex<u32>,
    // aimq-lock: family(alpha) -- fixture: second family in the reverse order
    left: Mutex<u32>,
}

impl Rev {
    pub fn backward(&self) -> u32 {
        let r = lock(&self.right);
        let l = lock(&self.left); // aimq-lint: allow(lock-discipline) -- fixture: inversion guarded by an external token
        *r + *l
    }
}
