//! L9 fixture: all three discard forms — `let _ =`, a terminal
//! `.ok();`, and a bare call statement whose fault-carrying `Result`
//! falls on the floor.

pub enum QueryError {
    Unavailable,
}

// aimq-probe: entry -- fixture: sanctioned forward to the boundary
pub fn risky(db: &Db, q: &Query) -> Result<Page, QueryError> {
    db.try_query(q)
}

pub fn caller(db: &Db, q: &Query) {
    let _ = risky(db, q);
    risky(db, q).ok();
    risky(db, q);
}
