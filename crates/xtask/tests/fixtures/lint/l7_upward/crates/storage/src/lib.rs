//! L7 fixture: `storage` imports `aimq_serve`, four layers above it in
//! the crate DAG. The manifest declaration and the import site are both
//! flagged.

use aimq_serve::QueryServer;

pub fn escalate(server: &QueryServer) -> usize {
    server.queue_depth()
}
