//! Passing twin of `l8_entry`: the direct caller carries a current
//! probe-entry annotation and no stale claims remain.

// aimq-probe: entry -- fixture: accounting lives in the caller's meter
pub fn fetch(db: &Db, q: &Query) -> u32 {
    db.try_query(q)
}

pub fn summarize(db: &Db) -> u32 {
    db.len()
}
