//! Passing twin of `l10_wrap`: the increment is saturating and the sum
//! carries an arith-allow escape with its invariant.

pub struct Meter {
    // aimq-arith: counter -- fixture: monotone event tally
    hits: u64,
}

impl Meter {
    pub fn bump(&mut self) {
        self.hits = self.hits.saturating_add(1);
    }

    pub fn combined(&self, other: &Meter) -> u64 {
        // aimq-arith: allow -- fixture: both tallies are bounded by one u32 event budget
        self.hits + other.hits
    }
}
