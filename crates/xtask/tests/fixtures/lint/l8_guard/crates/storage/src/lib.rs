//! L8 fixture: an *indirect* probing call under a live guard. L5 only
//! sees literal blocking names (`try_query` et al.); `refresh` probes
//! one hop away, so only the effect fixpoint connects the dots.

pub struct Memo {
    // aimq-lock: family(memo-state) -- fixture: guards the memo table
    state: Mutex<u32>,
}

impl Memo {
    // aimq-probe: entry -- fixture: sanctioned forward to the boundary
    pub fn refresh(&self, q: &Query) -> u32 {
        self.inner.try_query(q)
    }

    pub fn cached(&self, q: &Query) -> u32 {
        let guard = lock(&self.state);
        *guard + self.refresh(q)
    }
}
