//! Suppressed twin of `l13_flow`: the construction line vouches for
//! an out-of-band sink with the fault-sink annotation, so the
//! dataflow pass stands down.

pub enum QueryError {
    Timeout,
}

pub fn degrade(budget: u64) -> u64 {
    // aimq-fault: sink -- fixture: the caller snapshots `verdict` through a side channel
    let verdict = QueryError::Timeout;
    budget / 2
}
