//! Suppressed twin of `l6_relaxed_flag`: the Relaxed store and the
//! resulting unpaired flag both carry justifications.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Shutdown {
    // aimq-atomic: flag -- fixture: publishes the stop decision
    stop: AtomicBool, // aimq-lint: allow(atomics-audit) -- fixture: pairing established by a channel handoff
}

impl Shutdown {
    pub fn request(&self) {
        self.stop.store(true, Ordering::Relaxed); // aimq-lint: allow(atomics-audit) -- fixture: pairing established by a channel handoff
    }

    pub fn observed(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}
