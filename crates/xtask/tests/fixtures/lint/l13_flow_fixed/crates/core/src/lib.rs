//! Fixed twin of `l13_flow`: the fault is raised instead of dropped —
//! the construction sits inside `Err(..)` on a `return`, an
//! unambiguous sink.

pub enum QueryError {
    Timeout,
}

pub fn degrade(budget: u64) -> Result<u64, QueryError> {
    if budget == 0 {
        return Err(QueryError::Timeout);
    }
    Ok(budget / 2)
}
