//! Suppressed twin of `l11_drift`: the conditional key carries the
//! sanctioned optional-key annotation, the duplicate key is
//! individually excused, and the schema inventory is pinned fresh.

pub struct Snapshot {
    pub hits: u64,
    pub detail: Option<String>,
}

impl Snapshot {
    pub fn to_json(&self) -> Json {
        if let Some(detail) = &self.detail {
            // aimq-wire: optional -- fixture: `detail` rides only on populated snapshots
            return Json::obj(vec![("detail", Json::Str(detail.clone()))]);
        }
        Json::obj(vec![
            ("hits", Json::Num(self.hits as f64)),
            ("hits", Json::Num(0.0)), // aimq-lint: allow(wire-drift) -- fixture: last-wins override slot
        ])
    }
}
