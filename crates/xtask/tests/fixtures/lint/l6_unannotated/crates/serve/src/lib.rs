//! L6 fixture: an atomic field with no role annotation. Both the field
//! and the operation that cannot be attributed to a role are flagged.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Meter {
    hits: AtomicU64,
}

impl Meter {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
