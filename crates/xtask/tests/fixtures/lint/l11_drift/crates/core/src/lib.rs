//! L11 fixture: a duplicate key in a `to_json` object literal, an
//! unannotated conditional key, a stale optional-key annotation
//! covering nothing, and no pinned schema inventory
//! at `results/WIRE_SCHEMA.json`.

pub struct Snapshot {
    pub hits: u64,
    pub detail: Option<String>,
}

impl Snapshot {
    pub fn to_json(&self) -> Json {
        if let Some(detail) = &self.detail {
            return Json::obj(vec![("detail", Json::Str(detail.clone()))]);
        }
        Json::obj(vec![
            ("hits", Json::Num(self.hits as f64)),
            ("hits", Json::Num(0.0)),
        ])
    }
}

// aimq-wire: optional -- fixture: nothing conditional on the next line
pub fn plain() -> u64 {
    7
}
