//! L5 fixture, half two: acquires `beta` then `alpha` — the inverse of
//! the `storage` half's order, closing the cycle.

pub struct Rev {
    // aimq-lock: family(beta) -- fixture: first family in the reverse order
    right: Mutex<u32>,
    // aimq-lock: family(alpha) -- fixture: second family in the reverse order
    left: Mutex<u32>,
}

impl Rev {
    pub fn backward(&self) -> u32 {
        let r = lock(&self.right);
        let l = lock(&self.left);
        *r + *l
    }
}
