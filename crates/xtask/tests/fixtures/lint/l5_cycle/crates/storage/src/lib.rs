//! L5 fixture, half one: acquires `alpha` then `beta`. Together with
//! the `serve` half (which nests the other way) this closes an
//! acquisition-order cycle across the workspace.

pub struct Fwd {
    // aimq-lock: family(alpha) -- fixture: first family in the forward order
    left: Mutex<u32>,
    // aimq-lock: family(beta) -- fixture: second family in the forward order
    right: Mutex<u32>,
}

impl Fwd {
    pub fn forward(&self) -> u32 {
        let l = lock(&self.left);
        let r = lock(&self.right);
        *l + *r
    }
}
