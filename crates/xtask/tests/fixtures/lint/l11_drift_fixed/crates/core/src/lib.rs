//! Fixed twin of `l11_drift`: one unconditional object literal — the
//! absent `detail` is spelled `null` instead of vanishing, the
//! duplicate slot is gone, and the inventory is pinned fresh.

pub struct Snapshot {
    pub hits: u64,
    pub detail: Option<String>,
}

impl Snapshot {
    pub fn to_json(&self) -> Json {
        let detail = match &self.detail {
            Some(d) => Json::Str(d.clone()),
            None => Json::Null,
        };
        Json::obj(vec![
            ("hits", Json::Num(self.hits as f64)),
            ("detail", detail),
        ])
    }
}
