//! Suppressed twin of `l8_probe_in_sim`: the same transitive probing
//! path, justified at both tainted definitions.

// aimq-lint: allow(probe-effect) -- fixture: migration shim, removal tracked
pub fn refresh(db: &Db, q: &Query) -> u32 {
    db.try_query(q)
}

// aimq-lint: allow(probe-effect) -- fixture: migration shim, removal tracked
pub fn estimate(db: &Db, q: &Query) -> u32 {
    refresh(db, q) * 2
}
