//! Suppressed twin of `l5_probe`: the same guard-across-probe shape,
//! justified at the blocking call site.

pub struct Memo {
    // aimq-lock: family(memo-state) -- fixture: guards the memo table
    state: Mutex<u32>,
}

impl Memo {
    // aimq-probe: entry -- fixture: sanctioned forward to the boundary
    pub fn probe_through(&self, q: &Query) -> u32 {
        let guard = lock(&self.state);
        let fresh = self.inner.try_query(q); // aimq-lint: allow(lock-discipline) -- fixture: probe is a bounded in-memory stub
        *guard + fresh
    }
}
