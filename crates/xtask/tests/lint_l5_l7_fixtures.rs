//! End-to-end runs of the concurrency and layering rules (L5–L7) over
//! workspace-shaped fixture trees under `tests/fixtures/lint/`. Each
//! violation fixture has a passing twin in which every finding is
//! suppressed with a justified `aimq-lint: allow`.

use std::path::{Path, PathBuf};

use xtask::{lint_root, LintReport, Severity};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/lint")
        .join(name)
}

fn lint(name: &str) -> LintReport {
    lint_root(&fixture(name)).unwrap_or_else(|e| panic!("linting fixture `{name}`: {e}"))
}

fn errors(report: &LintReport) -> Vec<(&str, &str)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| (d.rule.as_str(), d.message.as_str()))
        .collect()
}

fn assert_clean(name: &str) {
    let report = lint(name);
    assert_eq!(
        report.errors(),
        0,
        "suppressed twin `{name}` must be clean: {:#?}",
        report.diagnostics
    );
}

#[test]
fn l5_cross_crate_acquisition_order_cycle_is_detected() {
    let report = lint("l5_cycle");
    let errs = errors(&report);
    // One finding per edge that closes the cycle: the inner acquisition
    // in each of the two crates.
    assert_eq!(errs.len(), 2, "{:#?}", report.diagnostics);
    assert!(errs.iter().all(|(rule, _)| *rule == "lock-discipline"));
    assert!(errs
        .iter()
        .all(|(_, msg)| msg.contains("acquisition-order cycle")));
    let paths: Vec<&Path> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.path.as_path())
        .collect();
    assert!(
        paths.iter().any(|p| p.starts_with("crates/storage"))
            && paths.iter().any(|p| p.starts_with("crates/serve")),
        "cycle must be reported in both participating crates: {paths:?}"
    );
}

#[test]
fn l5_cycle_suppressed_twin_is_clean() {
    assert_clean("l5_cycle_allow");
}

#[test]
fn l5_guard_held_across_probe_is_detected() {
    let report = lint("l5_probe");
    let errs = errors(&report);
    assert_eq!(errs.len(), 1, "{:#?}", report.diagnostics);
    assert_eq!(errs[0].0, "lock-discipline");
    assert!(
        errs[0].1.contains("held across blocking call `try_query`"),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn l5_probe_suppressed_twin_is_clean() {
    assert_clean("l5_probe_allow");
}

#[test]
fn l6_unannotated_atomic_is_detected() {
    let report = lint("l6_unannotated");
    let errs = errors(&report);
    assert!(!errs.is_empty());
    assert!(errs.iter().all(|(rule, _)| *rule == "atomics-audit"));
    assert!(
        errs.iter()
            .any(|(_, msg)| msg.contains("no role annotation")),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn l6_unannotated_suppressed_twin_is_clean() {
    assert_clean("l6_unannotated_allow");
}

#[test]
fn l6_relaxed_flag_is_detected() {
    let report = lint("l6_relaxed_flag");
    let errs = errors(&report);
    assert!(!errs.is_empty());
    assert!(errs.iter().all(|(rule, _)| *rule == "atomics-audit"));
    assert!(
        errs.iter()
            .any(|(_, msg)| msg.contains("`Ordering::Relaxed` on flag-role atomic")),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn l6_relaxed_flag_suppressed_twin_is_clean() {
    assert_clean("l6_relaxed_flag_allow");
}

#[test]
fn l7_upward_dependency_is_detected_in_manifest_and_source() {
    let report = lint("l7_upward");
    let errs = errors(&report);
    assert_eq!(errs.len(), 2, "{:#?}", report.diagnostics);
    assert!(errs.iter().all(|(rule, _)| *rule == "layering"));
    // The manifest declaration and the import site are separate findings.
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("declares a dependency")));
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("imports `aimq_serve`")));
}

#[test]
fn l7_upward_suppressed_twin_is_clean() {
    assert_clean("l7_upward_allow");
}

#[test]
fn json_report_round_trips_into_ci_annotations() {
    // The same path CI takes: lint --json, parse, emit ::error lines.
    let report = lint("l7_upward");
    let encoded = xtask::json::to_json(&report);
    let doc = xtask::json::parse(&encoded).expect("lint JSON parses back");
    let annotations = xtask::json::annotations(&doc).expect("annotations render");
    assert_eq!(
        annotations
            .lines()
            .filter(|l| l.starts_with("::error file="))
            .count(),
        2,
        "{annotations}"
    );
    assert!(annotations.contains("aimq::layering"), "{annotations}");
}
