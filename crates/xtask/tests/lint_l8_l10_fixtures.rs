//! End-to-end runs of the effect-system rules (L8–L10) over
//! workspace-shaped fixture trees under `tests/fixtures/lint/`. Each
//! violation fixture has a passing twin in which every finding is
//! either fixed outright or suppressed with a justified escape hatch
//! (`aimq-lint: allow(...)` / `aimq-arith: allow`).

use std::path::{Path, PathBuf};

use xtask::{lint_root, LintReport, Severity};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/lint")
        .join(name)
}

fn lint(name: &str) -> LintReport {
    lint_root(&fixture(name)).unwrap_or_else(|e| panic!("linting fixture `{name}`: {e}"))
}

fn errors(report: &LintReport) -> Vec<(&str, &str)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| (d.rule.as_str(), d.message.as_str()))
        .collect()
}

fn assert_clean(name: &str) {
    let report = lint(name);
    assert_eq!(
        report.errors(),
        0,
        "suppressed twin `{name}` must be clean: {:#?}",
        report.diagnostics
    );
}

#[test]
fn l8_transitive_probe_in_probe_free_crate_is_detected() {
    let report = lint("l8_probe_in_sim");
    let errs = errors(&report);
    assert_eq!(errs.len(), 2, "{:#?}", report.diagnostics);
    assert!(errs.iter().all(|(rule, _)| *rule == "probe-effect"));
    // The transitive case must carry the witness chain, not just a verdict.
    assert!(
        errs.iter()
            .any(|(_, msg)| msg.contains("`estimate` → `refresh` → `try_query`")),
        "{:#?}",
        report.diagnostics
    );
    assert!(errs
        .iter()
        .all(|(_, msg)| msg.contains("probe-free crate `sim`")));
}

#[test]
fn l8_probe_in_sim_suppressed_twin_is_clean() {
    assert_clean("l8_probe_in_sim_allow");
}

#[test]
fn l8_indirect_probe_under_live_guard_is_detected() {
    let report = lint("l8_guard");
    let errs = errors(&report);
    assert_eq!(errs.len(), 1, "{:#?}", report.diagnostics);
    assert_eq!(errs[0].0, "probe-effect");
    assert!(
        errs[0].1.contains("may probe the source") && errs[0].1.contains("`memo-state`"),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn l8_guard_suppressed_twin_is_clean() {
    assert_clean("l8_guard_allow");
}

#[test]
fn l8_unannotated_entry_and_stale_annotation_are_detected() {
    let report = lint("l8_entry");
    let errs = errors(&report);
    assert_eq!(errs.len(), 2, "{:#?}", report.diagnostics);
    assert!(errs.iter().all(|(rule, _)| *rule == "probe-effect"));
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("not annotated as a probing entry point")));
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("stale `aimq-probe: entry` annotation")));
}

#[test]
fn l8_entry_annotated_twin_is_clean() {
    assert_clean("l8_entry_allow");
}

#[test]
fn l9_all_three_discard_forms_are_detected() {
    let report = lint("l9_discard");
    let errs = errors(&report);
    assert_eq!(errs.len(), 3, "{:#?}", report.diagnostics);
    assert!(errs.iter().all(|(rule, _)| *rule == "result-discipline"));
    assert!(errs.iter().any(|(_, msg)| msg.contains("`let _ =`")));
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("terminal `.ok();`")));
    assert!(errs
        .iter()
        .any(|(_, msg)| msg.contains("bare call statement")));
}

#[test]
fn l9_discard_suppressed_twin_is_clean() {
    assert_clean("l9_discard_allow");
}

#[test]
fn l9_wildcard_arm_over_fault_enum_is_detected() {
    let report = lint("l9_wildcard");
    let errs = errors(&report);
    assert_eq!(errs.len(), 1, "{:#?}", report.diagnostics);
    assert_eq!(errs[0].0, "result-discipline");
    assert!(
        errs[0].1.contains("wildcard `_ =>`"),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn l9_wildcard_suppressed_twin_is_clean() {
    assert_clean("l9_wildcard_allow");
}

#[test]
fn l10_unchecked_counter_arithmetic_is_detected() {
    let report = lint("l10_wrap");
    let errs = errors(&report);
    assert_eq!(errs.len(), 2, "{:#?}", report.diagnostics);
    assert!(errs.iter().all(|(rule, _)| *rule == "counter-arith"));
    assert!(errs.iter().any(|(_, msg)| msg.contains("`+=`")));
    assert!(errs.iter().any(|(_, msg)| msg.contains("`+`")));
    assert!(errs.iter().all(|(_, msg)| msg.contains("`hits`")));
}

#[test]
fn l10_wrap_fixed_twin_is_clean() {
    assert_clean("l10_wrap_allow");
}

#[test]
fn explain_covers_the_effect_rules() {
    for rule in ["probe-effect", "result-discipline", "counter-arith"] {
        let info =
            xtask::rule_info(rule).unwrap_or_else(|| panic!("`--explain {rule}` must resolve"));
        assert_eq!(info.id, rule);
        assert!(!info.summary.is_empty() && !info.rationale.is_empty() && !info.remedy.is_empty());
    }
}
