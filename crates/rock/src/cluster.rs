use std::collections::{BTreeMap, BinaryHeap};

/// `f(θ) = (1 − θ) / (1 + θ)` — ROCK's estimate of the exponent governing
/// how many neighbors a point has inside its cluster.
pub(crate) fn f_theta(theta: f64) -> f64 {
    (1.0 - theta) / (1.0 + theta)
}

/// The result of ROCK's agglomerative phase: disjoint clusters of member
/// indices (into whatever member list the links were computed over).
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Clusters sorted by descending size, members ascending.
    pub clusters: Vec<Vec<u32>>,
}

impl Clustering {
    /// Number of clusters (including singletons).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when no clusters exist (no input points).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Cluster id of each point (indexed by member index).
    pub fn assignments(&self, n_points: usize) -> Vec<u32> {
        let mut assign = vec![0u32; n_points];
        for (cid, members) in self.clusters.iter().enumerate() {
            for &m in members {
                assign[m as usize] = cid as u32; // aimq-lint: allow(indexing) -- assign is sample-sized; members are sample indices
            }
        }
        assign
    }
}

#[derive(Debug)]
struct HeapEntry {
    goodness: f64,
    a: u32,
    b: u32,
    links: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.goodness == other.goodness && self.a == other.a && self.b == other.b
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on goodness; deterministic tie-break on ids.
        self.goodness
            .total_cmp(&other.goodness)
            .then_with(|| (other.a, other.b).cmp(&(self.a, self.b)))
    }
}

struct Cluster {
    members: Vec<u32>,
    links: BTreeMap<u32, u64>,
}

/// ROCK's greedy agglomerative clustering: repeatedly merge the cluster
/// pair with the highest goodness
/// `g(Ci,Cj) = links[Ci,Cj] / ((ni+nj)^(1+2f(θ)) − ni^(1+2f(θ)) − nj^(1+2f(θ)))`
/// until `target` clusters remain or no linked pair is left.
///
/// Uses a global lazy max-heap: entries are invalidated (and skipped on
/// pop) when either endpoint has since been merged away or the cached link
/// count is stale — `O(E log E)` overall.
pub fn cluster_greedy(
    links: &BTreeMap<(u32, u32), u32>,
    n_points: usize,
    theta: f64,
    target: usize,
) -> Clustering {
    let exponent = 1.0 + 2.0 * f_theta(theta);
    let goodness = |l: u64, na: usize, nb: usize| -> f64 {
        let denom = ((na + nb) as f64).powf(exponent)
            - (na as f64).powf(exponent)
            - (nb as f64).powf(exponent);
        if denom <= 0.0 {
            0.0
        } else {
            l as f64 / denom
        }
    };

    // One cluster per point to start; merged clusters get fresh ids.
    let mut clusters: Vec<Option<Cluster>> = (0..n_points)
        .map(|i| {
            Some(Cluster {
                members: vec![i as u32],
                links: BTreeMap::new(),
            })
        })
        .collect();
    for (&(a, b), &l) in links {
        let l = u64::from(l);
        if l == 0 {
            continue;
        }
        // Link keys index `members`; out-of-range pairs (a caller bug)
        // are dropped rather than panicking.
        if let Some(ca) = clusters.get_mut(a as usize).and_then(Option::as_mut) {
            ca.links.insert(b, l);
        }
        if let Some(cb) = clusters.get_mut(b as usize).and_then(Option::as_mut) {
            cb.links.insert(a, l);
        }
    }

    let mut heap = BinaryHeap::with_capacity(links.len());
    for (&(a, b), &l) in links {
        if l > 0 {
            heap.push(HeapEntry {
                goodness: goodness(u64::from(l), 1, 1),
                a,
                b,
                links: u64::from(l),
            });
        }
    }

    let mut alive = n_points;
    while alive > target {
        let Some(entry) = heap.pop() else { break };
        let (a, b) = (entry.a as usize, entry.b as usize);
        // Lazy invalidation: skip dead or stale entries.
        // aimq-lint: allow(indexing) -- a and b are live slots selected by the merge scan
        let fresh = match (&clusters[a], &clusters[b]) {
            (Some(ca), Some(_)) => ca.links.get(&entry.b).copied().unwrap_or(0) == entry.links,
            _ => false,
        };
        if !fresh {
            continue;
        }

        // Merge a and b into a fresh cluster. Both slots were just
        // checked alive; the let-else merely keeps this panic-free.
        // aimq-lint: allow(indexing) -- a and b are live slots selected by the merge scan
        let (Some(ca), Some(cb)) = (clusters[a].take(), clusters[b].take()) else {
            continue;
        };
        let new_id = clusters.len() as u32;
        let mut members = ca.members;
        members.extend(cb.members);

        // Combined link table: neighbors of either operand.
        let mut merged_links: BTreeMap<u32, u64> = BTreeMap::new();
        for (src, other_id) in [(&ca.links, entry.b), (&cb.links, entry.a)] {
            for (&x, &l) in src {
                if x == other_id {
                    continue; // the edge between a and b disappears
                }
                *merged_links.entry(x).or_insert(0) += l;
            }
        }

        // Rewire neighbors and push fresh heap entries.
        let new_size = members.len();
        for (&x, &l) in &merged_links {
            // Links only reference alive clusters; a dead neighbor would
            // be an invalidation bug and its entry is simply dropped.
            let Some(xc) = clusters.get_mut(x as usize).and_then(Option::as_mut) else {
                continue;
            };
            xc.links.remove(&(entry.a));
            xc.links.remove(&(entry.b));
            xc.links.insert(new_id, l);
            let g = goodness(l, new_size, xc.members.len());
            heap.push(HeapEntry {
                goodness: g,
                a: new_id,
                b: x,
                links: l,
            });
        }

        clusters.push(Some(Cluster {
            members,
            links: merged_links,
        }));
        alive -= 1;
    }

    let mut out: Vec<Vec<u32>> = clusters
        .into_iter()
        .flatten()
        .map(|c| {
            let mut m = c.members;
            m.sort_unstable();
            m
        })
        .collect();
    out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    Clustering { clusters: out }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links_of(pairs: &[((u32, u32), u32)]) -> BTreeMap<(u32, u32), u32> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn two_obvious_groups_merge_cleanly() {
        // Points 0-2 densely linked; 3-5 densely linked; no cross links.
        let links = links_of(&[
            ((0, 1), 2),
            ((0, 2), 2),
            ((1, 2), 2),
            ((3, 4), 2),
            ((3, 5), 2),
            ((4, 5), 2),
        ]);
        let c = cluster_greedy(&links, 6, 0.5, 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.clusters[0], vec![0, 1, 2]);
        assert_eq!(c.clusters[1], vec![3, 4, 5]);
    }

    #[test]
    fn unlinked_points_stay_singletons() {
        let links = links_of(&[((0, 1), 3)]);
        let c = cluster_greedy(&links, 4, 0.5, 1);
        // 0,1 merge; 2 and 3 have no links → remain singletons even though
        // target was 1.
        assert_eq!(c.len(), 3);
        assert_eq!(c.clusters[0], vec![0, 1]);
    }

    #[test]
    fn stops_at_target_cluster_count() {
        // Chain of links; target 3 keeps three clusters.
        let links = links_of(&[((0, 1), 5), ((1, 2), 4), ((2, 3), 3), ((3, 4), 2)]);
        let c = cluster_greedy(&links, 5, 0.5, 3);
        assert_eq!(c.len(), 3);
        let total: usize = c.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn goodness_prefers_strong_small_merges() {
        // Pair (0,1) has 10 links; pair (2,3) has 1. First merge must be
        // (0,1). With target 3 only one merge happens.
        let links = links_of(&[((0, 1), 10), ((2, 3), 1)]);
        let c = cluster_greedy(&links, 4, 0.5, 3);
        assert!(c.clusters.contains(&vec![0, 1]));
        assert!(c.clusters.contains(&vec![2]));
        assert!(c.clusters.contains(&vec![3]));
    }

    #[test]
    fn assignments_cover_all_points() {
        let links = links_of(&[((0, 1), 2), ((2, 3), 2)]);
        let c = cluster_greedy(&links, 5, 0.5, 2);
        let assign = c.assignments(5);
        assert_eq!(assign.len(), 5);
        // Points in the same cluster share an id; 4 is alone.
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[2], assign[3]);
        assert_ne!(assign[0], assign[2]);
        assert_ne!(assign[4], assign[0]);
    }

    #[test]
    fn empty_input() {
        let c = cluster_greedy(&BTreeMap::new(), 0, 0.5, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn deterministic_with_ties() {
        let links = links_of(&[((0, 1), 1), ((2, 3), 1)]);
        let a = cluster_greedy(&links, 4, 0.5, 2);
        let b = cluster_greedy(&links, 4, 0.5, 2);
        assert_eq!(a.clusters, b.clusters);
    }
}
