#![warn(missing_docs)]

//! # aimq-rock
//!
//! A from-scratch implementation of **ROCK** (*RObust Clustering using
//! linKs*; Guha, Rastogi & Shim, ICDE 1999) — the domain- and
//! user-independent baseline the AIMQ paper compares against (Section 6).
//!
//! ROCK clusters categorical tuples without a distance metric in value
//! space. Instead it counts **links**:
//!
//! * two tuples are *neighbors* when their Jaccard similarity (over their
//!   attribute–value pair sets) is at least a threshold θ;
//! * `link(p, q)` = number of common neighbors of `p` and `q`;
//! * clusters are merged greedily by the **goodness measure**
//!   `g(Ci, Cj) = links[Ci,Cj] / ((ni+nj)^(1+2f(θ)) − ni^(1+2f(θ)) − nj^(1+2f(θ)))`
//!   with `f(θ) = (1−θ)/(1+θ)`.
//!
//! Because link computation is `O(n · d²)` (d = average neighbor degree)
//! and clustering worst-case `O(n³)`, ROCK runs on a *sample* and the
//! remaining tuples are assigned to clusters by the paper's labeling rule
//! (most neighbors in a cluster, normalized by `(nc+1)^f(θ)`). The AIMQ
//! paper does exactly this, clustering 2k tuples and labeling the rest
//! (Table 2).
//!
//! [`RockModel::answer`] turns the clustering into an imprecise-query
//! answerer: the answers for a query tuple are its cluster's members,
//! ranked by Jaccard similarity — the comparison system of Sections
//! 6.4–6.5.

mod cluster;
mod links;
mod model;
mod points;

pub use cluster::{cluster_greedy, Clustering};
pub use links::compute_links;
pub use model::{RockConfig, RockModel, RockTimings};
pub use points::PointSet;
