use std::time::{Duration, Instant};

use aimq_afd::EncodedRelation;
use aimq_storage::RowId;

use crate::cluster::{cluster_greedy, f_theta};
use crate::links::compute_links;
use crate::PointSet;

/// ROCK hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RockConfig {
    /// Neighbor threshold θ: two tuples are neighbors iff their Jaccard
    /// similarity is at least θ.
    pub theta: f64,
    /// Number of clusters to stop the agglomerative phase at.
    pub target_clusters: usize,
    /// Size of the sample clustered exactly; remaining tuples are labeled
    /// (the paper clusters 2k of 25k/45k, Table 2).
    pub sample_size: usize,
    /// Seed for drawing the clustering sample.
    pub seed: u64,
    /// Clusters smaller than this after the agglomerative phase are
    /// discarded as outliers (their members stay unassigned and are never
    /// labeling targets) — the ROCK paper's outlier-elimination step
    /// ("stop at a larger number of clusters and weed out small
    /// clusters"). `1` keeps everything.
    pub min_cluster_size: usize,
}

impl Default for RockConfig {
    fn default() -> Self {
        RockConfig {
            theta: 0.5,
            target_clusters: 20,
            sample_size: 2000,
            seed: 7,
            min_cluster_size: 1,
        }
    }
}

/// Wall-clock timing of the three offline ROCK phases, as reported in the
/// paper's Table 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct RockTimings {
    /// Neighbor + link computation over the sample.
    pub link_computation: Duration,
    /// Agglomerative clustering of the sample.
    pub initial_clustering: Duration,
    /// Labeling of the non-sampled tuples.
    pub data_labeling: Duration,
}

/// A fitted ROCK model over a relation: sample clusters plus a full
/// assignment of every row to a cluster (or outlier).
#[derive(Debug)]
pub struct RockModel {
    points: PointSet,
    config: RockConfig,
    /// Clusters as row ids into the *full* relation.
    clusters: Vec<Vec<RowId>>,
    /// Cluster id per row; `None` = outlier (no neighbor in any cluster).
    assignments: Vec<Option<u32>>,
    timings: RockTimings,
}

impl RockModel {
    /// Fit ROCK over an encoded relation: draw a sample, compute links,
    /// cluster, then label every remaining row.
    pub fn fit(enc: &EncodedRelation, config: RockConfig) -> Self {
        let points = PointSet::from_encoded(enc);
        let n = points.len();

        // Deterministic sample of rows for the exact clustering phase.
        let sample_rows: Vec<RowId> = sample_rows(n, config.sample_size, config.seed);

        // aimq-lint: allow(wallclock) -- offline training stopwatch (RockTimings); never drives clustering
        let t0 = Instant::now();
        let links = compute_links(&points, &sample_rows, config.theta);
        let link_computation = t0.elapsed(); // aimq-lint: allow(wallclock) -- stopwatch readout

        // aimq-lint: allow(wallclock) -- offline training stopwatch (RockTimings); never drives clustering
        let t1 = Instant::now();
        let clustering = cluster_greedy(
            &links,
            sample_rows.len(),
            config.theta,
            config.target_clusters,
        );
        let initial_clustering = t1.elapsed(); // aimq-lint: allow(wallclock) -- stopwatch readout

        // Map member indices back to relation rows, weeding out clusters
        // below the outlier threshold.
        let mut clusters: Vec<Vec<RowId>> = clustering
            .clusters
            .iter()
            .filter(|c| c.len() >= config.min_cluster_size.max(1))
            .map(|c| c.iter().map(|&m| sample_rows[m as usize]).collect()) // aimq-lint: allow(indexing) -- cluster members are indices into the sample
            .collect();

        // Label the remaining rows: assign to the cluster maximizing
        // N_i / (n_i + 1)^f(θ) where N_i is the number of neighbors the
        // row has inside cluster i (ROCK Section 3.4); rows with no
        // neighbors anywhere stay outliers.
        // aimq-lint: allow(wallclock) -- offline training stopwatch (RockTimings); never drives clustering
        let t2 = Instant::now();
        let mut assignments: Vec<Option<u32>> = vec![None; n];
        for (cid, members) in clusters.iter().enumerate() {
            for &row in members {
                assignments[row as usize] = Some(cid as u32); // aimq-lint: allow(indexing) -- assignments is relation-sized; rows and cluster ids are minted by this build
            }
        }
        let ft = f_theta(config.theta);
        let in_sample: std::collections::BTreeSet<RowId> = sample_rows.iter().copied().collect();
        let mut labeled: Vec<(RowId, u32)> = Vec::new();
        for row in 0..n as RowId {
            if in_sample.contains(&row) {
                continue;
            }
            let mut best: Option<(f64, u32)> = None;
            for (cid, members) in clusters.iter().enumerate() {
                let neighbors = members
                    .iter()
                    .filter(|&&m| points.sim(row, m) >= config.theta)
                    .count();
                if neighbors == 0 {
                    continue;
                }
                let score = neighbors as f64 / ((members.len() + 1) as f64).powf(ft);
                if best.is_none_or(|(b, _)| score > b) {
                    best = Some((score, cid as u32));
                }
            }
            if let Some((_, cid)) = best {
                assignments[row as usize] = Some(cid); // aimq-lint: allow(indexing) -- assignments is relation-sized; rows and cluster ids are minted by this build
                labeled.push((row, cid));
            }
        }
        for (row, cid) in labeled {
            clusters[cid as usize].push(row); // aimq-lint: allow(indexing) -- assignments is relation-sized; rows and cluster ids are minted by this build
        }
        let data_labeling = t2.elapsed(); // aimq-lint: allow(wallclock) -- stopwatch readout

        RockModel {
            points,
            config,
            clusters,
            assignments,
            timings: RockTimings {
                link_computation,
                initial_clustering,
                data_labeling,
            },
        }
    }

    /// The fitted clusters (row ids into the full relation).
    pub fn clusters(&self) -> &[Vec<RowId>] {
        &self.clusters
    }

    /// Cluster id of `row` (`None` for outliers).
    pub fn assignment(&self, row: RowId) -> Option<u32> {
        self.assignments[row as usize] // aimq-lint: allow(indexing) -- assignments is relation-sized; rows and cluster ids are minted by this build
    }

    /// Offline phase timings (Table 2).
    pub fn timings(&self) -> RockTimings {
        self.timings
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> &RockConfig {
        &self.config
    }

    /// Answer an imprecise query whose base tuple is `row`: the members of
    /// `row`'s cluster ranked by Jaccard similarity to `row`, at most `k`.
    ///
    /// This is the "query answering system that uses ROCK" of Section 6.1:
    /// clusters determine the candidate set, similarity ranks it. Outlier
    /// rows get an empty answer.
    pub fn answer(&self, row: RowId, k: usize) -> Vec<(RowId, f64)> {
        let Some(cid) = self.assignment(row) else {
            return Vec::new();
        };
        let mut scored: Vec<(RowId, f64)> = self.clusters[cid as usize] // aimq-lint: allow(indexing) -- assignments is relation-sized; rows and cluster ids are minted by this build
            .iter()
            .filter(|&&m| m != row)
            .map(|&m| (m, self.points.sim(row, m)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

/// Deterministic sample of `k` of `n` rows (Fisher–Yates prefix).
fn sample_rows(n: usize, k: usize, seed: u64) -> Vec<RowId> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rows: Vec<RowId> = (0..n as RowId).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rows.shuffle(&mut rng);
    rows.truncate(k.min(n));
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_afd::BucketConfig;
    use aimq_catalog::{Schema, Tuple, Value};
    use aimq_storage::Relation;

    /// Two well-separated families of tuples plus one oddball.
    fn encoded() -> EncodedRelation {
        let schema = Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .categorical("C")
            .build()
            .unwrap();
        let rows = [
            // Family 1 (x-ish)
            ("x", "y", "z1"),
            ("x", "y", "z2"),
            ("x", "y", "z3"),
            ("x", "y", "z4"),
            // Family 2 (p-ish)
            ("p", "q", "r1"),
            ("p", "q", "r2"),
            ("p", "q", "r3"),
            ("p", "q", "r4"),
            // Oddball
            ("o", "o", "o"),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(a, b, c)| {
                Tuple::new(&schema, vec![Value::cat(a), Value::cat(b), Value::cat(c)]).unwrap()
            })
            .collect();
        let rel = Relation::from_tuples(schema.clone(), &tuples).unwrap();
        EncodedRelation::encode(&rel, &BucketConfig::for_schema(&schema))
    }

    fn fitted() -> RockModel {
        RockModel::fit(
            &encoded(),
            RockConfig {
                theta: 0.4,
                target_clusters: 2,
                sample_size: 6, // force labeling of the rest
                // A seed whose 6-row sample draws 3 tuples from each
                // family: two sampled family members alone can never
                // merge (no common neighbor), so a thinner sample
                // cannot exhibit the clustering this fixture exercises.
                seed: 1,
                min_cluster_size: 1,
            },
        )
    }

    #[test]
    fn families_separate_and_oddball_is_outlierish() {
        let m = fitted();
        // Rows 0-3 share a cluster; rows 4-7 share a (different) cluster.
        let c0 = m.assignment(0);
        assert!(c0.is_some());
        for r in 1..4 {
            assert_eq!(m.assignment(r), c0, "row {r}");
        }
        let c4 = m.assignment(4);
        assert!(c4.is_some());
        for r in 5..8 {
            assert_eq!(m.assignment(r), c4, "row {r}");
        }
        assert_ne!(c0, c4);
        // The oddball has no neighbors at θ=0.4 → outlier or singleton.
        let odd = m.assignment(8);
        if let Some(cid) = odd {
            assert_eq!(m.clusters()[cid as usize].len(), 1);
        }
    }

    #[test]
    fn answer_returns_cluster_members_ranked() {
        let m = fitted();
        let answers = m.answer(0, 10);
        assert!(!answers.is_empty());
        assert!(answers.len() <= 3); // own cluster minus self
                                     // All answers from the same family.
        for &(row, sim) in &answers {
            assert!((1..4).contains(&row), "row {row} not in family 1");
            assert!(sim > 0.0);
        }
        // Ranking is non-increasing.
        for w in answers.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn answer_respects_k() {
        let m = fitted();
        assert!(m.answer(0, 2).len() <= 2);
        assert!(m.answer(0, 0).is_empty());
    }

    #[test]
    fn outlier_answers_empty_or_own_singleton() {
        let m = fitted();
        let answers = m.answer(8, 5);
        assert!(answers.is_empty());
    }

    #[test]
    fn every_row_is_assigned_or_outlier() {
        let m = fitted();
        let clustered: usize = m.clusters().iter().map(Vec::len).sum();
        let outliers = (0..9).filter(|&r| m.assignment(r).is_none()).count();
        assert_eq!(clustered + outliers, 9);
    }

    #[test]
    fn timings_are_populated() {
        let m = fitted();
        // Durations exist (may be ~0 on tiny data but must not panic).
        let t = m.timings();
        let _ = t.link_computation + t.initial_clustering + t.data_labeling;
    }

    #[test]
    fn deterministic_given_seed() {
        let a = fitted();
        let b = fitted();
        assert_eq!(a.clusters(), b.clusters());
    }

    #[test]
    fn min_cluster_size_weeds_out_small_clusters() {
        // With a size-2 floor, the oddball's singleton cluster vanishes
        // and its row becomes a plain outlier.
        let m = RockModel::fit(
            &encoded(),
            RockConfig {
                theta: 0.4,
                target_clusters: 3,
                sample_size: 100,
                seed: 3,
                min_cluster_size: 2,
            },
        );
        assert!(m.clusters().iter().all(|c| c.len() >= 2));
        assert_eq!(m.assignment(8), None);
        assert!(m.answer(8, 5).is_empty());
        // The two families survive intact.
        assert_eq!(m.clusters().len(), 2);
    }

    #[test]
    fn full_sample_skips_labeling() {
        let m = RockModel::fit(
            &encoded(),
            RockConfig {
                theta: 0.4,
                target_clusters: 2,
                sample_size: 100,
                seed: 3,
                min_cluster_size: 1,
            },
        );
        let clustered: usize = m.clusters().iter().map(Vec::len).sum();
        assert_eq!(clustered, 9); // all rows clustered exactly
    }
}
