use aimq_afd::EncodedRelation;
use aimq_catalog::AttrId;
use aimq_storage::{RowId, NULL_CODE};

/// Tuples viewed as ROCK data points: each point is the set of its
/// attribute–value pairs (categorical dictionary codes, bucketized numeric
/// codes — the same encoding TANE mines over).
///
/// Because every tuple binds at most one value per attribute, the Jaccard
/// similarity of two points reduces to counting per-attribute agreement:
/// `sim = |A∩B| / (|A| + |B| − |A∩B|)` where `|A∩B|` is the number of
/// attributes on which the two rows hold the same non-null code.
#[derive(Debug, Clone)]
pub struct PointSet {
    /// Row-major `n × m` code matrix.
    codes: Vec<u32>,
    n: usize,
    m: usize,
}

impl PointSet {
    /// Build from a mining encoding.
    pub fn from_encoded(enc: &EncodedRelation) -> Self {
        let n = enc.n_rows();
        let m = enc.n_attrs();
        let mut codes = vec![NULL_CODE; n * m];
        for a in 0..m {
            let col = enc.codes(AttrId(a));
            for (row, &c) in col.iter().enumerate() {
                codes[row * m + a] = c; // aimq-lint: allow(indexing) -- row-major matrix: row < n and attr < m by the build loops
            }
        }
        PointSet { codes, n, m }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of attributes per point.
    pub fn arity(&self) -> usize {
        self.m
    }

    /// The code row of point `p`.
    pub fn point(&self, p: RowId) -> &[u32] {
        let p = p as usize;
        &self.codes[p * self.m..(p + 1) * self.m] // aimq-lint: allow(indexing) -- row-major matrix: row < n and attr < m by the build loops
    }

    /// Jaccard similarity between points `a` and `b` (set semantics over
    /// AV-pairs; nulls belong to neither set).
    pub fn sim(&self, a: RowId, b: RowId) -> f64 {
        sim_rows(self.point(a), self.point(b))
    }
}

/// Jaccard similarity of two aligned code rows.
pub(crate) fn sim_rows(a: &[u32], b: &[u32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut inter = 0usize;
    let mut size_a = 0usize;
    let mut size_b = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        let xa = x != NULL_CODE;
        let yb = y != NULL_CODE;
        size_a += usize::from(xa);
        size_b += usize::from(yb);
        inter += usize::from(xa && yb && x == y);
    }
    let union = size_a + size_b - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_afd::BucketConfig;
    use aimq_catalog::{Schema, Tuple, Value};
    use aimq_storage::Relation;

    fn points() -> PointSet {
        let schema = Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .categorical("C")
            .build()
            .unwrap();
        let rows = [
            ("x", "y", "z"),
            ("x", "y", "w"),
            ("p", "q", "r"),
            ("x", "q", "z"),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(a, b, c)| {
                Tuple::new(&schema, vec![Value::cat(a), Value::cat(b), Value::cat(c)]).unwrap()
            })
            .collect();
        let rel = Relation::from_tuples(schema.clone(), &tuples).unwrap();
        PointSet::from_encoded(&aimq_afd::EncodedRelation::encode(
            &rel,
            &BucketConfig::for_schema(&schema),
        ))
    }

    #[test]
    fn self_similarity_is_one() {
        let ps = points();
        for p in 0..ps.len() as RowId {
            assert_eq!(ps.sim(p, p), 1.0);
        }
    }

    #[test]
    fn jaccard_counts_agreeing_attributes() {
        let ps = points();
        // rows 0 and 1 agree on A, B (2 of 3): sim = 2/(3+3-2) = 0.5.
        assert!((ps.sim(0, 1) - 0.5).abs() < 1e-12);
        // rows 0 and 2 agree on nothing.
        assert_eq!(ps.sim(0, 2), 0.0);
        // rows 0 and 3 agree on A, C: 2/4 = 0.5.
        assert!((ps.sim(0, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let ps = points();
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(ps.sim(a, b), ps.sim(b, a));
            }
        }
    }

    #[test]
    fn nulls_shrink_the_sets() {
        let schema = Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .build()
            .unwrap();
        let t1 = Tuple::new(&schema, vec![Value::cat("x"), Value::Null]).unwrap();
        let t2 = Tuple::new(&schema, vec![Value::cat("x"), Value::cat("y")]).unwrap();
        let rel = Relation::from_tuples(schema.clone(), &[t1, t2]).unwrap();
        let ps = PointSet::from_encoded(&aimq_afd::EncodedRelation::encode(
            &rel,
            &BucketConfig::for_schema(&schema),
        ));
        // |A| = 1, |B| = 2, inter = 1 → 1/2.
        assert!((ps.sim(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_null_points_have_zero_similarity() {
        let schema = Schema::builder("R").categorical("A").build().unwrap();
        let t = Tuple::new(&schema, vec![Value::Null]).unwrap();
        let rel = Relation::from_tuples(schema.clone(), &[t.clone(), t]).unwrap();
        let ps = PointSet::from_encoded(&aimq_afd::EncodedRelation::encode(
            &rel,
            &BucketConfig::for_schema(&schema),
        ));
        assert_eq!(ps.sim(0, 1), 0.0);
    }
}
