use std::collections::BTreeMap;

use aimq_storage::RowId;

use crate::PointSet;

/// Compute ROCK link counts among `members` (indices into `points`).
///
/// 1. neighbor lists: `p` and `q` are neighbors iff `sim(p, q) ≥ θ`
///    (a point is *not* its own neighbor, matching the ROCK paper);
/// 2. `link(p, q)` = number of common neighbors, computed by iterating
///    each point's neighbor list and crediting every pair in it —
///    `O(Σ deg²)`, the ROCK paper's algorithm.
///
/// Returns the (sparse, symmetric) link map keyed by `(i, j)` with
/// `i < j`, where `i`, `j` index into `members` — a `BTreeMap` so every
/// downstream iteration (heap seeding, merges) is deterministic.
pub fn compute_links(
    points: &PointSet,
    members: &[RowId],
    theta: f64,
) -> BTreeMap<(u32, u32), u32> {
    let n = members.len();
    // Neighbor lists over member indices.
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            // aimq-lint: allow(indexing) -- i and j are bounded by members.len()
            if points.sim(members[i], members[j]) >= theta {
                neighbors[i].push(j as u32); // aimq-lint: allow(indexing) -- i and j are bounded by members.len()
                neighbors[j].push(i as u32); // aimq-lint: allow(indexing) -- i and j are bounded by members.len()
            }
        }
    }

    let mut links: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    for nbrs in &neighbors {
        for (a_idx, &a) in nbrs.iter().enumerate() {
            // aimq-lint: allow(indexing) -- a_idx enumerates nbrs, so the tail slice is in-range
            for &b in &nbrs[a_idx + 1..] {
                let key = if a < b { (a, b) } else { (b, a) };
                *links.entry(key).or_insert(0) += 1;
            }
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_afd::{BucketConfig, EncodedRelation};
    use aimq_catalog::{Schema, Tuple, Value};
    use aimq_storage::Relation;

    fn point_set(rows: &[(&str, &str, &str)]) -> PointSet {
        let schema = Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .categorical("C")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(a, b, c)| {
                Tuple::new(&schema, vec![Value::cat(a), Value::cat(b), Value::cat(c)]).unwrap()
            })
            .collect();
        let rel = Relation::from_tuples(schema.clone(), &tuples).unwrap();
        PointSet::from_encoded(&EncodedRelation::encode(
            &rel,
            &BucketConfig::for_schema(&schema),
        ))
    }

    #[test]
    fn links_count_common_neighbors() {
        // Points 0,1,2 pairwise similar (share 2 of 3 attrs → sim 0.5);
        // point 3 is isolated.
        let ps = point_set(&[
            ("x", "y", "z"),
            ("x", "y", "w"),
            ("x", "y", "v"),
            ("p", "q", "r"),
        ]);
        let members: Vec<RowId> = (0..4).collect();
        let links = compute_links(&ps, &members, 0.5);
        // Neighbor graph: 0-1, 0-2, 1-2. Common neighbors: each pair has 1.
        assert_eq!(links.get(&(0, 1)), Some(&1));
        assert_eq!(links.get(&(0, 2)), Some(&1));
        assert_eq!(links.get(&(1, 2)), Some(&1));
        assert!(!links.keys().any(|&(a, b)| a == 3 || b == 3));
    }

    #[test]
    fn high_threshold_disconnects_everything() {
        let ps = point_set(&[("x", "y", "z"), ("x", "y", "w"), ("x", "q", "v")]);
        let links = compute_links(&ps, &[0, 1, 2], 0.9);
        assert!(links.is_empty());
    }

    #[test]
    fn links_are_over_member_indices_not_row_ids() {
        let ps = point_set(&[
            ("p", "q", "r"), // row 0, excluded
            ("x", "y", "z"),
            ("x", "y", "w"),
            ("x", "y", "v"),
        ]);
        // members[0] = row 1, etc.
        let links = compute_links(&ps, &[1, 2, 3], 0.5);
        assert_eq!(links.get(&(0, 1)), Some(&1));
        assert_eq!(links.len(), 3);
    }

    #[test]
    fn star_topology_gives_leaf_pairs_links() {
        // Hub similar to all leaves; leaves dissimilar to each other.
        let ps = point_set(&[
            ("h", "h", "h"),
            ("h", "h", "a"), // sim to hub 0.5, to other leaves 2 shared? ("h","h") shared → 0.5... need leaves pairwise < θ
            ("h", "b", "h"),
            ("c", "h", "h"),
        ]);
        // leaf-leaf similarity: e.g. rows 1,2 share only A? (h vs h yes), B (h vs b no), C (a vs h no) → 1/5 = 0.2.
        let links = compute_links(&ps, &[0, 1, 2, 3], 0.4);
        // Neighbors: hub-leaf edges only. Every leaf pair shares the hub.
        assert_eq!(links.get(&(1, 2)), Some(&1));
        assert_eq!(links.get(&(1, 3)), Some(&1));
        assert_eq!(links.get(&(2, 3)), Some(&1));
        // Hub has no pair with 2 common neighbors... hub-leaf pairs share
        // no common neighbor (leaves aren't neighbors of each other).
        assert_eq!(links.get(&(0, 1)), None);
    }

    #[test]
    fn empty_members() {
        let ps = point_set(&[("x", "y", "z")]);
        assert!(compute_links(&ps, &[], 0.5).is_empty());
    }
}
