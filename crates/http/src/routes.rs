//! Route dispatch: a pure function from one framed [`Request`] plus the
//! shared [`AppState`] to one [`Response`].
//!
//! The route table mirrors the MeiliDB shape:
//!
//! | method  | path                       | body in                  | 200 body out |
//! |---------|----------------------------|--------------------------|--------------|
//! | `POST`  | `/indexes/:name/search`    | `{"query":{attr:value}}` | `{"index","result","latency_ticks","worker","deadline_exceeded"}` |
//! | `GET`   | `/health`                  | —                        | `{"status","index"}` |
//! | `GET`   | `/stats`                   | —                        | `{"serve","access","sources","http"}` |
//! | `GET`   | `/config`                  | —                        | engine config |
//! | `PATCH` | `/config`                  | partial engine config    | updated engine config |
//!
//! Error mapping is total and typed: malformed JSON or queries → 400,
//! unknown index or route → 404, wrong method on a known path → 405
//! (with `Allow`), [`ServeError::Overloaded`] → 429 with `Retry-After`,
//! [`ServeError::ShuttingDown`] → 503, and a deadline miss → **200**
//! with the partial result and its degradation report
//! (`"deadline_exceeded":true`) — a degraded answer is an answer, not a
//! server failure. Every error body is
//! `{"error":{"code":...,"message":...}}`.
//!
//! Determinism boundary: every body is produced by the `to_json()`
//! family over `aimq_catalog::Json`, so a response's bytes are a pure
//! function of the engine's result — the end-to-end tests compare them
//! byte-for-byte against in-process serialization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aimq_catalog::{ImpreciseQuery, Json, Value};
use aimq_serve::{QueryServer, ServeError};
use aimq_storage::WebDatabase;

use crate::wire::{Request, Response};

/// Wire-level counters for the HTTP front door itself (the serving
/// runtime's counters live in [`aimq_serve::ServeStats`]).
#[derive(Debug, Default)]
pub struct HttpStats {
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    connections_accepted: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    requests_served: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    responses_4xx: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    responses_5xx: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    connection_errors: AtomicU64,
}

impl HttpStats {
    pub(crate) fn note_connection(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_response(&self, status: u16) {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        if (400..500).contains(&status) {
            self.responses_4xx.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.responses_5xx.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_connection_error(&self) {
        self.connection_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// The counters as a deterministic [`Json`] object, embedded in the
    /// `GET /stats` body.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "connections_accepted",
                Json::Num(self.connections_accepted.load(Ordering::Relaxed) as f64),
            ),
            (
                "requests_served",
                Json::Num(self.requests_served.load(Ordering::Relaxed) as f64),
            ),
            (
                "responses_4xx",
                Json::Num(self.responses_4xx.load(Ordering::Relaxed) as f64),
            ),
            (
                "responses_5xx",
                Json::Num(self.responses_5xx.load(Ordering::Relaxed) as f64),
            ),
            (
                "connection_errors",
                Json::Num(self.connection_errors.load(Ordering::Relaxed) as f64),
            ),
        ])
    }
}

/// Everything a connection handler needs to answer requests: the worker
/// pool, the source stack it probes (for `/stats`), the one index name
/// this server exposes, and the wire counters.
pub struct AppState {
    /// The serving runtime all searches are submitted to.
    pub server: QueryServer,
    /// The shared source stack (the same `Arc` the workers probe).
    pub db: Arc<dyn WebDatabase>,
    /// Name of the single index this server exposes.
    pub index: String,
    /// Wire-level counters.
    pub http_stats: HttpStats,
}

/// Answer one request. Total: every input maps to exactly one response.
pub fn dispatch(state: &AppState, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => health(state),
        ("GET", ["stats"]) => stats(state),
        ("GET", ["config"]) => config_get(state),
        ("PATCH", ["config"]) => config_patch(state, req),
        ("POST", ["indexes", name, "search"]) => search(state, name, req),
        // Known paths, wrong method: 405 with the allowed set.
        (_, ["health"] | ["stats"]) => method_not_allowed("GET"),
        (_, ["config"]) => method_not_allowed("GET, PATCH"),
        (_, ["indexes", _, "search"]) => method_not_allowed("POST"),
        _ => Response::error(
            404,
            "not_found",
            &format!("no route for {} {}", req.method, req.path),
        ),
    }
}

fn method_not_allowed(allow: &str) -> Response {
    Response::error(
        405,
        "method_not_allowed",
        &format!("allowed methods: {allow}"),
    )
    .with_header("allow", allow)
}

fn health(state: &AppState) -> Response {
    Response::json(
        200,
        &Json::obj(vec![
            ("status", Json::Str("ok".into())),
            ("index", Json::Str(state.index.clone())),
        ]),
    )
}

fn stats(state: &AppState) -> Response {
    let sources = state
        .db
        .source_health()
        .unwrap_or_default()
        .iter()
        .map(|s| s.to_json())
        .collect();
    Response::json(
        200,
        &Json::obj(vec![
            ("serve", state.server.stats().to_json()),
            ("access", state.db.stats().to_json()),
            ("sources", Json::Arr(sources)),
            ("http", state.http_stats.to_json()),
        ]),
    )
}

fn config_get(state: &AppState) -> Response {
    Response::json(200, &state.server.engine_config().to_json())
}

fn config_patch(state: &AppState, req: &Request) -> Response {
    let patch = match parse_body(req) {
        Ok(json) => json,
        Err(resp) => return *resp,
    };
    match state.server.engine_config().with_json_patch(&patch) {
        Ok(next) => {
            state.server.set_engine_config(next);
            Response::json(200, &next.to_json())
        }
        Err(message) => Response::error(400, "invalid_config", &message),
    }
}

fn search(state: &AppState, name: &str, req: &Request) -> Response {
    if name != state.index {
        return Response::error(
            404,
            "unknown_index",
            &format!(
                "no index named `{}`; this server serves `{}`",
                name, state.index
            ),
        );
    }
    let body = match parse_body(req) {
        Ok(json) => json,
        Err(resp) => return *resp,
    };
    let query = match build_query(state, &body) {
        Ok(query) => query,
        Err(resp) => return *resp,
    };
    let ticket = match state.server.submit(query) {
        Ok(ticket) => ticket,
        Err(error) => return serve_error(&error),
    };
    let schema = state.db.schema();
    match ticket.wait() {
        Ok(outcome) => Response::json(
            200,
            &Json::obj(vec![
                ("index", Json::Str(state.index.clone())),
                ("result", outcome.answer.to_json(schema)),
                ("latency_ticks", Json::Num(outcome.latency_ticks as f64)),
                ("worker", Json::Num(outcome.worker as f64)),
                ("deadline_exceeded", Json::Bool(false)),
            ]),
        ),
        // A deadline miss is a *degraded success*: the partial answer
        // set rides in the normal result slot, its damage itemized in
        // `result.degradation`, and the flag tells the client why the
        // set may be short.
        Err(ServeError::DeadlineExceeded { partial }) => Response::json(
            200,
            &Json::obj(vec![
                ("index", Json::Str(state.index.clone())),
                ("result", partial.to_json(schema)),
                ("latency_ticks", Json::Null),
                ("worker", Json::Null),
                ("deadline_exceeded", Json::Bool(true)),
            ]),
        ),
        Err(error) => serve_error(&error),
    }
}

/// Map a typed serving refusal to its wire form.
fn serve_error(error: &ServeError) -> Response {
    match error {
        ServeError::Overloaded => {
            Response::error(429, "overloaded", "admission queue full; query rejected")
                .with_header("retry-after", "1")
        }
        ServeError::ShuttingDown => {
            Response::error(503, "shutting_down", "server is shutting down")
        }
        // `DeadlineExceeded` is handled at the call site (it is a 200
        // with a partial body, not an error response); reaching here
        // would be a routing bug, reported as such rather than hidden.
        ServeError::DeadlineExceeded { .. } => {
            Response::error(500, "internal", "deadline partial mishandled")
        }
    }
}

/// Parse the request body as JSON; the `Err` side is the ready-made 400.
fn parse_body(req: &Request) -> Result<Json, Box<Response>> {
    let text = req.body_str().ok_or_else(|| {
        Box::new(Response::error(
            400,
            "bad_request",
            "request body is not valid UTF-8",
        ))
    })?;
    Json::parse(text).map_err(|e| Box::new(Response::error(400, "bad_request", &e.to_string())))
}

/// Build the imprecise query from `{"query": {attr: value, ...}}`.
fn build_query(state: &AppState, body: &Json) -> Result<ImpreciseQuery, Box<Response>> {
    let bad = |message: String| Box::new(Response::error(400, "bad_request", &message));
    let bindings = body
        .get("query")
        .and_then(Json::as_object)
        .ok_or_else(|| bad("body must be `{\"query\": {attribute: value, ...}}`".to_string()))?;
    let schema = state.db.schema();
    let mut builder = ImpreciseQuery::builder(schema);
    for (attr, value) in bindings {
        let value = match value {
            Json::Str(s) => Value::cat(s.clone()),
            Json::Num(n) => Value::num(*n),
            other => {
                return Err(bad(format!(
                    "attribute `{attr}` must bind a string or a number, got {other}"
                )))
            }
        };
        builder = builder.like(attr, value).map_err(|e| bad(e.to_string()))?;
    }
    builder.build().map_err(|e| bad(e.to_string()))
}
