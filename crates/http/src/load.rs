//! Open-loop load generation over real sockets.
//!
//! *Open loop* means arrivals are scheduled by the clock, not by
//! responses: request `i` is sent at `t0 + i/rate` whether or not
//! request `i-1` has come back. A closed-loop generator (send, wait,
//! send) self-throttles exactly when the server saturates and therefore
//! cannot see the saturation it is supposed to measure; the open-loop
//! shape keeps offering load, so queueing delay and typed 429
//! rejections become visible in the numbers.
//!
//! Latency is measured from the request's **scheduled** send time, not
//! the moment the socket write happened — the standard guard against
//! coordinated omission (a generator that falls behind schedule would
//! otherwise under-report exactly the latencies that matter).
//!
//! This module reads the wall clock and sleeps, which is why the `http`
//! crate sits outside the workspace's determinism (L3/L4) lint scope —
//! measured load is the one place virtual time cannot stand in for the
//! real thing.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use aimq_catalog::Json;

use crate::client;

/// Number of power-of-two latency buckets (microseconds): bucket `i>0`
/// counts replies with latency in `[2^(i-1), 2^i)` µs; bucket 0 holds
/// sub-microsecond replies; the last bucket absorbs the tail.
pub const LATENCY_BUCKETS_US: usize = 32;

/// One load step's knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Offered arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Total requests to offer at that rate.
    pub requests: usize,
}

/// What one open-loop run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The configured arrival rate.
    pub offered_rate: f64,
    /// Requests offered.
    pub requests: usize,
    /// Replies with a 2xx status.
    pub completed_2xx: u64,
    /// Typed backpressure refusals (HTTP 429).
    pub rejected_429: u64,
    /// Other 4xx replies (should be zero on a well-formed replay).
    pub other_4xx: u64,
    /// 5xx replies (should always be zero).
    pub responses_5xx: u64,
    /// Requests that died below HTTP (connect/read/write failures).
    pub transport_errors: u64,
    /// Wall time from first scheduled send to last reply.
    pub elapsed_secs: f64,
    /// Achieved 2xx goodput, replies per second.
    pub achieved_2xx_rate: f64,
    /// Power-of-two latency histogram (µs), all replies.
    pub latency_hist_us: Vec<u64>,
    /// Latency percentiles over all replies, µs.
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Maximum observed latency, µs.
    pub max_us: u64,
}

impl LoadReport {
    /// Saturation test: the run is saturated when 2xx goodput fell
    /// below `fraction` of the offered rate — the server (or its
    /// admission queue) could no longer keep up with arrivals.
    #[must_use]
    pub fn saturated(&self, fraction: f64) -> bool {
        self.achieved_2xx_rate < self.offered_rate * fraction
    }

    /// The report as a deterministic [`Json`] object (field order is
    /// declaration order) — one entry of `results/BENCH_http.json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("offered_rate", Json::Num(self.offered_rate)),
            ("requests", Json::Num(self.requests as f64)),
            ("completed_2xx", Json::Num(self.completed_2xx as f64)),
            ("rejected_429", Json::Num(self.rejected_429 as f64)),
            ("other_4xx", Json::Num(self.other_4xx as f64)),
            ("responses_5xx", Json::Num(self.responses_5xx as f64)),
            ("transport_errors", Json::Num(self.transport_errors as f64)),
            ("elapsed_secs", Json::Num(self.elapsed_secs)),
            ("achieved_2xx_rate", Json::Num(self.achieved_2xx_rate)),
            (
                "latency_hist_us",
                Json::Arr(
                    self.latency_hist_us
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
            ("p50_us", Json::Num(self.p50_us as f64)),
            ("p90_us", Json::Num(self.p90_us as f64)),
            ("p99_us", Json::Num(self.p99_us as f64)),
            ("max_us", Json::Num(self.max_us as f64)),
        ])
    }
}

/// Histogram bucket for a latency in µs: 0 → 0, otherwise
/// `floor(log2(us)) + 1`, saturating at the last bucket.
fn bucket_for_us(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        let raw = 64 - us.leading_zeros() as usize;
        raw.min(LATENCY_BUCKETS_US - 1)
    }
}

/// Offer `config.requests` POSTs to `path` on `addr` at
/// `config.rate_per_sec`, cycling through `bodies`, and aggregate the
/// replies. Blocks until every in-flight request resolves.
pub fn run_open_loop(
    addr: SocketAddr,
    path: &str,
    bodies: &[String],
    config: &LoadConfig,
) -> LoadReport {
    let rate = config.rate_per_sec.max(0.001);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.requests);
    for i in 0..config.requests {
        let due = Duration::from_secs_f64(i as f64 / rate);
        if let Some(wait) = due.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let body = bodies
            .get(i.checked_rem(bodies.len().max(1)).unwrap_or(0))
            .cloned()
            .unwrap_or_default();
        let path = path.to_string();
        handles.push(std::thread::spawn(move || {
            let reply = client::request(addr, "POST", &path, Some(&body));
            // Latency from the *scheduled* send time: scheduler lag and
            // connect time are part of what the client experienced.
            let latency = start.elapsed().saturating_sub(due);
            let status = match reply {
                Ok(r) => r.status,
                Err(_) => 0, // transport failure; no HTTP status exists
            };
            (status, latency.as_micros() as u64)
        }));
    }

    let mut completed_2xx = 0u64;
    let mut rejected_429 = 0u64;
    let mut other_4xx = 0u64;
    let mut responses_5xx = 0u64;
    let mut transport_errors = 0u64;
    let mut hist = vec![0u64; LATENCY_BUCKETS_US];
    let mut latencies = Vec::with_capacity(config.requests);
    for handle in handles {
        // A panicked sender is indistinguishable from a transport
        // failure from the report's point of view.
        let (status, latency_us) = handle.join().unwrap_or((0, 0));
        match status {
            0 => transport_errors = transport_errors.saturating_add(1),
            200..=299 => completed_2xx = completed_2xx.saturating_add(1),
            429 => rejected_429 = rejected_429.saturating_add(1),
            400..=499 => other_4xx = other_4xx.saturating_add(1),
            _ => responses_5xx = responses_5xx.saturating_add(1),
        }
        if status != 0 {
            if let Some(slot) = hist.get_mut(bucket_for_us(latency_us)) {
                *slot = slot.saturating_add(1);
            }
            latencies.push(latency_us);
        }
    }
    let elapsed_secs = start.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64) * p).ceil() as usize;
        latencies
            .get(rank.saturating_sub(1).min(latencies.len() - 1))
            .copied()
            .unwrap_or(0)
    };
    LoadReport {
        offered_rate: rate,
        requests: config.requests,
        completed_2xx,
        rejected_429,
        other_4xx,
        responses_5xx,
        transport_errors,
        elapsed_secs,
        achieved_2xx_rate: completed_2xx as f64 / elapsed_secs,
        latency_hist_us: hist,
        p50_us: percentile(0.50),
        p90_us: percentile(0.90),
        p99_us: percentile(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        assert_eq!(bucket_for_us(0), 0);
        assert_eq!(bucket_for_us(1), 1);
        assert_eq!(bucket_for_us(1000), 10);
        assert_eq!(bucket_for_us(u64::MAX), LATENCY_BUCKETS_US - 1);
    }

    #[test]
    fn saturation_compares_goodput_to_offered_rate() {
        let mut report = LoadReport {
            offered_rate: 100.0,
            requests: 100,
            completed_2xx: 95,
            rejected_429: 5,
            other_4xx: 0,
            responses_5xx: 0,
            transport_errors: 0,
            elapsed_secs: 1.0,
            achieved_2xx_rate: 95.0,
            latency_hist_us: vec![0; LATENCY_BUCKETS_US],
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            max_us: 0,
        };
        assert!(!report.saturated(0.9));
        report.achieved_2xx_rate = 50.0;
        assert!(report.saturated(0.9));
    }
}
