//! HTTP/1.1 framing: an incremental request decoder and a response
//! writer, both over plain byte buffers.
//!
//! The subset is deliberate — exactly what the AIMQ wire protocol
//! needs, nothing a generic proxy would want:
//!
//! * requests are framed by `Content-Length` only (no chunked
//!   transfer-encoding; a request that asks for it is refused with a
//!   typed 400);
//! * connections are keep-alive by default (HTTP/1.1 semantics) and
//!   closed on `Connection: close`, framing errors, or server
//!   shutdown;
//! * header blocks are capped at [`MAX_HEADER_BYTES`] and bodies at
//!   [`MAX_BODY_BYTES`], so a hostile peer cannot buffer the server
//!   into the ground.
//!
//! The decoder is *incremental*: the connection loop feeds it whatever
//! bytes the socket produced, and [`Decoder::try_decode`] either frames
//! one complete request, reports that it needs more input, or rejects
//! the stream with a [`FrameError`]. This shape keeps socket timeouts
//! (used to poll the shutdown flag) out of the parsing logic entirely.

use std::fmt;
use std::io::{self, Write};

use aimq_catalog::Json;

/// Cap on the request line + headers of one request.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Cap on one request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One framed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target with any `?query` suffix removed.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the client asked for the connection to close after
    /// this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, if it is valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a byte stream could not be framed as a request. Every variant
/// maps to one terminal 400 response; the connection closes after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The request line was not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// A header line had no `:` separator.
    BadHeader,
    /// The header block exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// `Content-Length` was present but not a decimal integer.
    BadContentLength,
    /// The declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The request used `Transfer-Encoding`, which this server does not
    /// speak.
    UnsupportedTransferEncoding,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadRequestLine => write!(f, "malformed request line"),
            FrameError::BadHeader => write!(f, "malformed header line"),
            FrameError::HeadersTooLarge => {
                write!(f, "header block exceeds {MAX_HEADER_BYTES} bytes")
            }
            FrameError::BadContentLength => write!(f, "unparseable content-length"),
            FrameError::BodyTooLarge => write!(f, "body exceeds {MAX_BODY_BYTES} bytes"),
            FrameError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported; use content-length")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental request decoder: owns the connection's unconsumed bytes.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
}

/// Position of `needle` in `hay`, if present.
fn find_subslice(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Parse one `Name: value` header line into a lowercased name and a
/// trimmed value, or `None` when the line has no colon. The single
/// normalization point for both directions of the wire: the server's
/// request decoder and the test client's response reader share it, so
/// header matching (`content-length`, `retry-after`, …) can never
/// disagree on case or whitespace between the two paths.
pub(crate) fn parse_header_line(line: &str) -> Option<(String, String)> {
    let (name, value) = line.split_once(':')?;
    Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

impl Decoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Append bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet framed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Frame one complete request if the buffer holds one.
    ///
    /// `Ok(None)` means "feed me more bytes"; an `Err` is terminal for
    /// the connection (the buffer is in an undefined state afterwards).
    pub fn try_decode(&mut self) -> Result<Option<Request>, FrameError> {
        let head_len = match find_subslice(&self.buf, b"\r\n\r\n") {
            Some(pos) => pos.saturating_add(4),
            None => {
                if self.buf.len() > MAX_HEADER_BYTES {
                    return Err(FrameError::HeadersTooLarge);
                }
                return Ok(None);
            }
        };
        if head_len > MAX_HEADER_BYTES {
            return Err(FrameError::HeadersTooLarge);
        }
        let head = self.buf.get(..head_len).unwrap_or_default();
        let head_text = std::str::from_utf8(head).map_err(|_| FrameError::BadHeader)?;
        let mut lines = head_text.trim_end_matches("\r\n").split("\r\n");

        let request_line = lines.next().ok_or(FrameError::BadRequestLine)?;
        let mut parts = request_line.split(' ');
        let method = parts.next().ok_or(FrameError::BadRequestLine)?;
        let target = parts.next().ok_or(FrameError::BadRequestLine)?;
        let version = parts.next().ok_or(FrameError::BadRequestLine)?;
        if method.is_empty()
            || target.is_empty()
            || parts.next().is_some()
            || !version.starts_with("HTTP/1.")
        {
            return Err(FrameError::BadRequestLine);
        }

        let mut headers = Vec::new();
        let mut content_length: usize = 0;
        for line in lines {
            let (name, value) = parse_header_line(line).ok_or(FrameError::BadHeader)?;
            if name == "content-length" {
                content_length = value.parse().map_err(|_| FrameError::BadContentLength)?;
            }
            if name == "transfer-encoding" {
                return Err(FrameError::UnsupportedTransferEncoding);
            }
            headers.push((name, value));
        }
        if content_length > MAX_BODY_BYTES {
            return Err(FrameError::BodyTooLarge);
        }

        let total = head_len.saturating_add(content_length);
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf.get(head_len..total).unwrap_or_default().to_vec();
        let path = target.split('?').next().unwrap_or(target).to_string();
        let request = Request {
            method: method.to_string(),
            path,
            headers,
            body,
        };
        self.buf.drain(..total);
        Ok(Some(request))
    }
}

/// One HTTP response, built by the routing layer and serialized by the
/// connection loop.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the always-present `Content-Type`,
    /// `Content-Length`, and `Connection`.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: the body is `value`'s compact deterministic
    /// serialization.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: value.to_string_compact().into_bytes(),
        }
    }

    /// The canonical typed error body:
    /// `{"error":{"code":..., "message":...}}`.
    pub fn error(status: u16, code: &str, message: &str) -> Response {
        Response::json(
            status,
            &Json::obj(vec![(
                "error",
                Json::obj(vec![
                    ("code", Json::Str(code.to_string())),
                    ("message", Json::Str(message.to_string())),
                ]),
            )]),
        )
    }

    /// Add a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Standard reason phrase for the status codes this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize status line, headers, and body to `w`. `close`
    /// controls the `Connection` header (the caller decides keep-alive
    /// vs drain).
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8]) -> Result<Vec<Request>, FrameError> {
        let mut dec = Decoder::new();
        dec.extend(bytes);
        let mut out = Vec::new();
        while let Some(req) = dec.try_decode()? {
            out.push(req);
        }
        Ok(out)
    }

    #[test]
    fn frames_a_simple_get() {
        let reqs = decode_all(b"GET /health HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, "GET");
        assert_eq!(reqs[0].path, "/health");
        assert_eq!(reqs[0].header("host"), Some("x"));
        assert!(reqs[0].body.is_empty());
    }

    #[test]
    fn frames_a_post_with_body_and_strips_query_string() {
        let reqs =
            decode_all(b"POST /indexes/cardb/search?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, "/indexes/cardb/search");
        assert_eq!(reqs[0].body, b"abcd");
    }

    #[test]
    fn pipelined_requests_frame_one_at_a_time() {
        let reqs = decode_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].path, "/a");
        assert_eq!(reqs[1].path, "/b");
    }

    #[test]
    fn partial_input_asks_for_more() {
        let mut dec = Decoder::new();
        dec.extend(b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\n12345");
        assert!(dec.try_decode().unwrap().is_none());
        dec.extend(b"67890");
        let req = dec.try_decode().unwrap().expect("complete");
        assert_eq!(req.body, b"1234567890");
    }

    #[test]
    fn framing_errors_are_typed() {
        assert_eq!(
            decode_all(b"BROKEN\r\n\r\n").unwrap_err(),
            FrameError::BadRequestLine
        );
        assert_eq!(
            decode_all(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err(),
            FrameError::BadHeader
        );
        assert_eq!(
            decode_all(b"GET /x HTTP/1.1\r\ncontent-length: seven\r\n\r\n").unwrap_err(),
            FrameError::BadContentLength
        );
        assert_eq!(
            decode_all(b"GET /x HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n").unwrap_err(),
            FrameError::BodyTooLarge
        );
        assert_eq!(
            decode_all(b"GET /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err(),
            FrameError::UnsupportedTransferEncoding
        );
        let huge = vec![b'a'; MAX_HEADER_BYTES + 2];
        assert_eq!(decode_all(&huge).unwrap_err(), FrameError::HeadersTooLarge);
    }

    #[test]
    fn connection_close_is_detected_case_insensitively() {
        let reqs = decode_all(b"GET /x HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(reqs[0].wants_close());
        let reqs = decode_all(b"GET /x HTTP/1.1\r\n\r\n").unwrap();
        assert!(!reqs[0].wants_close());
    }

    #[test]
    fn responses_serialize_with_framing_headers() {
        let resp = Response::json(200, &Json::obj(vec![("ok", Json::Bool(true))]));
        let mut out = Vec::new();
        resp.write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let resp = Response::error(429, "overloaded", "busy").with_header("retry-after", "1");
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":{\"code\":\"overloaded\",\"message\":\"busy\"}}"));
    }
}
