//! `aimq-http`: a network front door over [`aimq_serve`].
//!
//! Everything below the socket is unchanged: the HTTP layer frames
//! bytes into requests, translates them to [`aimq_serve::QueryServer`]
//! submissions, and serializes the typed outcomes back out. It owns
//! **no** serving logic — admission, deadlines, degradation, and
//! shutdown-drain semantics all live in `aimq-serve`, which is what
//! lets the end-to-end tests demand byte-identical results between the
//! in-process path and the wire path.
//!
//! The crate splits along that boundary:
//!
//! - [`wire`](crate::Decoder): HTTP/1.1 framing — an incremental
//!   request [`Decoder`] (keep-alive, pipelining, `Content-Length`
//!   bodies, typed [`FrameError`]s) and the [`Response`] writer.
//! - [`routes`](crate::dispatch): the pure request → response function
//!   and the MeiliDB-shaped route table.
//! - [`server`](crate::AimqHttpServer): the listener, the
//!   thread-per-connection keep-alive loop, and the three-phase
//!   graceful shutdown (stop accepting → drain connections → shut the
//!   pool).
//! - [`client`]: a minimal blocking client for tests, the CLI, and the
//!   load generator.
//! - [`load`]: the open-loop load generator that drives the saturation
//!   benchmark (`aimq-bench`'s `http_load`).
//!
//! This crate deliberately sits *outside* the workspace's determinism
//! lint scope (L3/L4): sockets, wall clocks, and sleeps are its whole
//! job. The panic-freedom and effect-discipline lints (L1, L5, L6,
//! L8-L10) apply in full.

#![warn(missing_docs)]

mod routes;
mod server;
mod wire;

pub mod client;
pub mod load;

pub use routes::{dispatch, AppState, HttpStats};
pub use server::{AimqHttpServer, HttpConfig};
pub use wire::{Decoder, FrameError, Request, Response, MAX_BODY_BYTES, MAX_HEADER_BYTES};
