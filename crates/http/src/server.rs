//! The listener: accept loop, per-connection threads, keep-alive, and
//! the three-phase graceful shutdown.
//!
//! Threading model: one acceptor thread blocks on
//! [`std::net::TcpListener::accept`]; each accepted connection gets its
//! own thread running the keep-alive loop (frame request → dispatch →
//! write response). The actual query work happens on the
//! [`QueryServer`]'s worker pool — a connection thread spends its life
//! parsing bytes and blocking on a [`aimq_serve::Ticket`], so
//! thread-per-connection is cheap at the concurrency levels a probe
//! budgeted engine can sustain anyway.
//!
//! Shutdown ordering (the part that is easy to get wrong):
//!
//! 1. **Stop accepting** — the shutdown flag flips, the acceptor is
//!    poked awake by a loopback connection and exits.
//! 2. **Drain keep-alive connections** — every connection thread
//!    finishes the request it is serving (including waiting out its
//!    ticket), then notices the flag at the next read tick and closes
//!    instead of idling for another request.
//! 3. **Shut the pool** — only now is [`QueryServer::shutdown`] called:
//!    admission closes, the workers drain the queue, and the final
//!    stats snapshot observes every reply delivered.
//!
//! Because step 3 happens strictly after step 2, no connection can be
//! holding a ticket the pool will never redeem, and the "no dropped
//! replies on shutdown" regression tests hold over real sockets.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use aimq::AimqSystem;
use aimq_serve::{ServeConfig, ServeStatsSnapshot};
use aimq_storage::WebDatabase;

use crate::routes::{dispatch, AppState};
use crate::wire::{Decoder, FrameError, Response};

/// How often a parked connection thread wakes to check the shutdown
/// flag (also the upper bound on how stale a keep-alive drain can be).
const READ_TICK: Duration = Duration::from_millis(50);

/// Front-door knobs.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Name of the single index exposed under `/indexes/:name/search`.
    pub index: String,
    /// The serving runtime's configuration (pool size, queue,
    /// deadlines, engine knobs).
    pub serve: ServeConfig,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            addr: "127.0.0.1:7700".to_string(),
            index: "cardb".to_string(),
            serve: ServeConfig::default(),
        }
    }
}

/// Poison-recovering lock for the connection-handle registry: a
/// connection thread that panicked has already closed its socket, and
/// joining the remaining threads matters more than cascading.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock() // aimq-lint: allow(lock-discipline) -- local helper; family attributed at the field
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A running HTTP front door over one [`aimq_serve::QueryServer`].
pub struct AimqHttpServer {
    addr: SocketAddr,
    state: Arc<AppState>,
    // aimq-atomic: flag -- Release store in shutdown() pairs with the
    // Acquire loads in the acceptor and every connection loop
    shutting_down: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    // aimq-lock: family(http-conns) -- leaf lock: push/drain the handle
    // list only; joins happen after the guard is dropped
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl AimqHttpServer {
    /// Bind `config.addr` and start serving. The engine (`system`) and
    /// source stack (`db`) are shared with the worker pool exactly as
    /// in the in-process [`aimq_serve::QueryServer`] path — the HTTP
    /// layer adds I/O, never logic.
    pub fn start(
        system: Arc<AimqSystem>,
        db: Arc<dyn WebDatabase>,
        config: HttpConfig,
    ) -> io::Result<AimqHttpServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let server = aimq_serve::QueryServer::start(system, Arc::clone(&db), config.serve);
        let state = Arc::new(AppState {
            server,
            db,
            index: config.index,
            http_stats: crate::routes::HttpStats::default(),
        });
        // aimq-atomic: flag -- Release store in shutdown() pairs with the
        // Acquire loads in the acceptor and every connection loop
        let shutting_down = Arc::new(AtomicBool::new(false));
        // aimq-lock: family(http-conns) -- leaf lock: push/drain the handle
        // list only; joins happen after the guard is dropped
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let state = Arc::clone(&state);
            let shutting_down = Arc::clone(&shutting_down);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutting_down.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    state.http_stats.note_connection();
                    let state = Arc::clone(&state);
                    let shutting_down = Arc::clone(&shutting_down);
                    let handle = std::thread::spawn(move || {
                        if handle_connection(&state, &shutting_down, stream).is_err() {
                            // The peer reset or the socket died; the
                            // connection is over either way — count it
                            // so /stats shows transport trouble.
                            state.http_stats.note_connection_error();
                        }
                    });
                    // Reap finished handles as we go (dropping a
                    // finished JoinHandle detaches it) so a long-lived
                    // server doesn't accumulate one per past connection.
                    let mut registry = lock(&conns);
                    registry.retain(|h| !h.is_finished());
                    registry.push(handle);
                }
            })
        };

        Ok(AimqHttpServer {
            addr,
            state,
            shutting_down,
            acceptor: Some(acceptor),
            conns,
        })
    }

    /// The bound address (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving counters so far (the same snapshot `GET /stats` serves).
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.state.server.stats()
    }

    /// Graceful shutdown in the documented order: stop accepting, drain
    /// keep-alive connections, then shut the worker pool. Returns the
    /// pool's final, fully drained stats snapshot.
    pub fn shutdown(mut self) -> ServeStatsSnapshot {
        self.shutting_down.store(true, Ordering::Release);
        // The acceptor blocks in accept(); a loopback connection wakes
        // it so it can observe the flag. If the connect fails the
        // acceptor still exits at the next real connection.
        if TcpStream::connect(self.addr).is_err() {
            self.state.http_stats.note_connection_error();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join(); // aimq-lint: allow(result-discipline) -- an acceptor panic has no recovery; draining continues regardless
        }
        // Drain: join every connection thread. Handles are moved out
        // under the lock (the inner block drops the guard), joined
        // after it is released.
        let handles = { std::mem::take(&mut *lock(&self.conns)) };
        for handle in handles {
            let _ = handle.join(); // aimq-lint: allow(result-discipline) -- a connection panic already closed its socket; the drain must continue
        }
        // Only now — with every ticket redeemed — shut the pool.
        match Arc::try_unwrap(self.state) {
            Ok(state) => state.server.shutdown(),
            // Unreachable in practice (all holders were joined above),
            // but a typed fallback beats a panic: close admission and
            // report the counters as they stand.
            Err(state) => {
                state.server.close();
                state.server.stats()
            }
        }
    }
}

/// One connection's keep-alive loop. An `Err` is a transport failure;
/// protocol failures (unframeable requests) answer 400 and close with
/// `Ok`.
fn handle_connection(
    state: &AppState,
    shutting_down: &AtomicBool,
    mut stream: TcpStream,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut decoder = Decoder::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every request already buffered (pipelining included).
        loop {
            match decoder.try_decode() {
                Ok(Some(request)) => {
                    let response = dispatch(state, &request);
                    state.http_stats.note_response(response.status);
                    // During drain the response still goes out, but the
                    // connection announces the close instead of
                    // pretending another request would be served.
                    let close = request.wants_close() || shutting_down.load(Ordering::Acquire);
                    response.write_to(&mut stream, close)?;
                    if close {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(frame_error) => {
                    // Unframeable streams get one typed 400, then the
                    // connection closes — resynchronizing with a peer
                    // whose framing is broken is guesswork.
                    let response = to_bad_request(&frame_error);
                    state.http_stats.note_response(response.status);
                    response.write_to(&mut stream, true)?;
                    return Ok(());
                }
            }
        }
        if shutting_down.load(Ordering::Acquire) {
            // Drain point: nothing buffered forms a complete request,
            // so the keep-alive connection closes here.
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => decoder.extend(chunk.get(..n).unwrap_or_default()),
            // The read tick expired: loop around to re-check the flag.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
}

/// The one response a framing error produces.
fn to_bad_request(error: &FrameError) -> Response {
    Response::error(400, "bad_request", &error.to_string())
}
