//! A minimal blocking HTTP/1.1 client — enough to drive the front door
//! from tests, the CLI, and the open-loop load generator without
//! pulling in a real client stack.
//!
//! One function, one exchange: [`exchange`] writes a request on an open
//! stream and reads one `Content-Length`-framed response, so keep-alive
//! reuse is the caller's choice of calling it twice on the same stream.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One parsed response.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body (UTF-8; every body this server emits is JSON).
    pub body: String,
}

impl Reply {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Write one request and read one response on an open stream.
pub fn exchange(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Reply> {
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: aimq\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_reply(stream)
}

/// Connect, perform one exchange, and close.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    exchange(&mut stream, method, path, body)
}

/// Read one framed response from the stream.
fn read_reply(stream: &mut TcpStream) -> io::Result<Reply> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_len = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response head"));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    };
    let head = std::str::from_utf8(buf.get(..head_len).unwrap_or_default())
        .map_err(|_| bad("non-UTF-8 response head"))?;
    let mut lines = head.trim_end_matches("\r\n").split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response head"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length: usize = 0;
    for line in lines {
        let (name, value) =
            crate::wire::parse_header_line(line).ok_or_else(|| bad("malformed header"))?;
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
        }
        headers.push((name, value));
    }
    let mut body = buf.get(head_len..).unwrap_or_default().to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 response body"))?;
    Ok(Reply {
        status,
        headers,
        body,
    })
}
