//! Route-semantics tests over real sockets, with exact pinned response
//! bodies: the wire protocol is part of the public contract, so these
//! tests assert bytes, not shapes, wherever the body is deterministic.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use aimq::{AimqSystem, TrainConfig};
use aimq_catalog::{Json, Schema, SelectionQuery};
use aimq_data::CarDb;
use aimq_http::{client, AimqHttpServer, HttpConfig};
use aimq_serve::ServeConfig;
use aimq_storage::{AccessStats, CachedWebDb, InMemoryWebDb, QueryError, QueryPage, WebDatabase};

fn system_and_db() -> (Arc<AimqSystem>, Arc<dyn WebDatabase>) {
    let db = InMemoryWebDb::new(CarDb::generate(600, 7));
    let sample = db.relation().random_sample(200, 1);
    let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
    let shared: Arc<dyn WebDatabase> = Arc::new(CachedWebDb::with_stripes(db, 1024, 8));
    (Arc::new(system), shared)
}

fn start(serve: ServeConfig) -> AimqHttpServer {
    let (system, db) = system_and_db();
    let config = HttpConfig {
        addr: "127.0.0.1:0".to_string(),
        index: "cardb".to_string(),
        serve,
    };
    AimqHttpServer::start(system, db, config).expect("bind")
}

const SEARCH: &str = "/indexes/cardb/search";
const CAMRY: &str = r#"{"query":{"Model":"Camry"}}"#;

#[test]
fn health_and_stats_respond_with_shared_snapshots() {
    let server = start(ServeConfig::default());
    let health = client::request(server.addr(), "GET", "/health", None).expect("health");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, r#"{"status":"ok","index":"cardb"}"#);

    // Serve one query so the counters are non-trivial.
    let ok = client::request(server.addr(), "POST", SEARCH, Some(CAMRY)).expect("search");
    assert_eq!(ok.status, 200);

    let stats = client::request(server.addr(), "GET", "/stats", None).expect("stats");
    assert_eq!(stats.status, 200);
    let body = Json::parse(&stats.body).expect("stats is JSON");
    let serve = body.get("serve").expect("serve section");
    assert_eq!(serve.get("completed").and_then(Json::as_u64), Some(1));
    let access = body.get("access").expect("access section");
    assert!(
        access
            .get("queries_issued")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0
    );
    assert!(body.get("sources").and_then(Json::as_array).is_some());
    let http = body.get("http").expect("http section");
    assert!(
        http.get("requests_served")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 2
    );
    server.shutdown();
}

#[test]
fn malformed_json_body_is_a_pinned_400() {
    let server = start(ServeConfig::default());
    let reply = client::request(server.addr(), "POST", SEARCH, Some("?")).expect("reply");
    assert_eq!(reply.status, 400);
    assert_eq!(
        reply.body,
        r#"{"error":{"code":"bad_request","message":"invalid JSON at byte 0: expected a JSON value"}}"#
    );

    // Well-formed JSON, wrong shape: the pinned usage message.
    let reply = client::request(server.addr(), "POST", SEARCH, Some(r#"{"q":1}"#)).expect("reply");
    assert_eq!(reply.status, 400);
    assert_eq!(
        reply.body,
        r#"{"error":{"code":"bad_request","message":"body must be `{\"query\": {attribute: value, ...}}`"}}"#
    );

    // A binding that is neither string nor number.
    let reply = client::request(
        server.addr(),
        "POST",
        SEARCH,
        Some(r#"{"query":{"Model":[1]}}"#),
    )
    .expect("reply");
    assert_eq!(reply.status, 400);
    assert_eq!(
        reply.body,
        r#"{"error":{"code":"bad_request","message":"attribute `Model` must bind a string or a number, got [1]"}}"#
    );

    // An attribute the schema does not know: still a 400, with the
    // catalog's own message (not pinned here — it belongs to catalog).
    let reply = client::request(
        server.addr(),
        "POST",
        SEARCH,
        Some(r#"{"query":{"Nope":"x"}}"#),
    )
    .expect("reply");
    assert_eq!(reply.status, 400);
    assert!(
        reply.body.contains("\"code\":\"bad_request\""),
        "{}",
        reply.body
    );
    assert!(reply.body.contains("Nope"), "{}", reply.body);
    server.shutdown();
}

#[test]
fn unknown_index_is_a_pinned_404() {
    let server = start(ServeConfig::default());
    let reply =
        client::request(server.addr(), "POST", "/indexes/nope/search", Some(CAMRY)).expect("reply");
    assert_eq!(reply.status, 404);
    assert_eq!(
        reply.body,
        r#"{"error":{"code":"unknown_index","message":"no index named `nope`; this server serves `cardb`"}}"#
    );

    let reply = client::request(server.addr(), "GET", "/no/such/route", None).expect("reply");
    assert_eq!(reply.status, 404);
    assert_eq!(
        reply.body,
        r#"{"error":{"code":"not_found","message":"no route for GET /no/such/route"}}"#
    );
    server.shutdown();
}

#[test]
fn wrong_method_is_405_with_allow_header() {
    let server = start(ServeConfig::default());
    let reply = client::request(server.addr(), "GET", SEARCH, None).expect("reply");
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow"), Some("POST"));
    assert_eq!(
        reply.body,
        r#"{"error":{"code":"method_not_allowed","message":"allowed methods: POST"}}"#
    );

    let reply = client::request(server.addr(), "DELETE", "/config", None).expect("reply");
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow"), Some("GET, PATCH"));
    server.shutdown();
}

#[test]
fn config_roundtrip_patches_the_live_engine() {
    let server = start(ServeConfig::default());
    let before = client::request(server.addr(), "GET", "/config", None).expect("config");
    assert_eq!(before.status, 200);
    let parsed = Json::parse(&before.body).expect("config is JSON");
    assert_eq!(parsed.get("top_k").and_then(Json::as_u64), Some(10));

    let patched =
        client::request(server.addr(), "PATCH", "/config", Some(r#"{"top_k": 3}"#)).expect("patch");
    assert_eq!(patched.status, 200);
    let parsed = Json::parse(&patched.body).expect("patched config is JSON");
    assert_eq!(parsed.get("top_k").and_then(Json::as_u64), Some(3));

    // The patch applies to queries dequeued after it.
    let reply = client::request(server.addr(), "POST", SEARCH, Some(CAMRY)).expect("search");
    assert_eq!(reply.status, 200);
    let body = Json::parse(&reply.body).expect("search body");
    let answers = body
        .get("result")
        .and_then(|r| r.get("answers"))
        .and_then(Json::as_array)
        .expect("answers");
    assert!(answers.len() <= 3, "patched top_k must bound answers");

    // Unknown keys are an all-or-nothing 400.
    let rejected = client::request(
        server.addr(),
        "PATCH",
        "/config",
        Some(r#"{"top_k": 5, "no_such_knob": 1}"#),
    )
    .expect("bad patch");
    assert_eq!(rejected.status, 400);
    assert!(
        rejected.body.contains("\"code\":\"invalid_config\""),
        "{}",
        rejected.body
    );
    let after = client::request(server.addr(), "GET", "/config", None).expect("config");
    let parsed = Json::parse(&after.body).expect("config is JSON");
    assert_eq!(
        parsed.get("top_k").and_then(Json::as_u64),
        Some(3),
        "a rejected patch must change nothing"
    );
    server.shutdown();
}

/// A database whose probes block until the test drops the sender —
/// deterministically wedges the worker so overload is observable.
struct GatedDb<D> {
    inner: D,
    gate: std::sync::Mutex<std::sync::mpsc::Receiver<()>>,
}

impl<D: WebDatabase> WebDatabase for GatedDb<D> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        let _ = self.gate.lock().expect("gate lock").recv();
        self.inner.try_query(query)
    }

    fn stats(&self) -> AccessStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

#[test]
fn overload_is_a_pinned_429_with_retry_after() {
    let (system, _) = system_and_db();
    let (hold, gate) = std::sync::mpsc::channel::<()>();
    let db: Arc<dyn WebDatabase> = Arc::new(GatedDb {
        inner: InMemoryWebDb::new(CarDb::generate(600, 7)),
        gate: std::sync::Mutex::new(gate),
    });
    let server = AimqHttpServer::start(
        system,
        db,
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            index: "cardb".to_string(),
            serve: ServeConfig {
                workers: 1,
                queue_capacity: 1,
                ..ServeConfig::default()
            },
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Fill the pool: one query wedged in the gated probe, one queued.
    let in_flight: Vec<_> = (0..2)
        .map(|_| {
            let handle =
                std::thread::spawn(move || client::request(addr, "POST", SEARCH, Some(CAMRY)));
            // Let the request reach admission before offering the next.
            std::thread::sleep(Duration::from_millis(150));
            handle
        })
        .collect();

    // Third concurrent query: the admission queue refuses it.
    let reply = client::request(addr, "POST", SEARCH, Some(CAMRY)).expect("reply");
    assert_eq!(reply.status, 429);
    assert_eq!(reply.header("retry-after"), Some("1"));
    assert_eq!(
        reply.body,
        r#"{"error":{"code":"overloaded","message":"admission queue full; query rejected"}}"#
    );

    // Open the gate; the two admitted queries complete normally.
    drop(hold);
    for handle in in_flight {
        let reply = handle.join().expect("client thread").expect("reply");
        assert_eq!(reply.status, 200);
    }
    let final_stats = server.shutdown();
    assert_eq!(final_stats.admitted, 2);
    assert_eq!(final_stats.rejected, 1);
    assert_eq!(final_stats.completed, 2);
}

#[test]
fn deadline_partial_is_a_200_with_degradation() {
    let server = start(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        deadline_ticks: 1, // one probe, then the axe
        ticks_per_probe: 1,
        ..ServeConfig::default()
    });
    let reply = client::request(server.addr(), "POST", SEARCH, Some(CAMRY)).expect("reply");
    assert_eq!(reply.status, 200, "a degraded answer is still an answer");
    let body = Json::parse(&reply.body).expect("body is JSON");
    assert_eq!(
        body.get("deadline_exceeded").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(body.get("latency_ticks"), Some(&Json::Null));
    assert_eq!(body.get("worker"), Some(&Json::Null));
    let degradation = body
        .get("result")
        .and_then(|r| r.get("degradation"))
        .expect("partial result carries its degradation report");
    let skipped = degradation
        .get("probes_skipped")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let source_lost = degradation
        .get("source_lost")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    assert!(
        source_lost || skipped > 0,
        "deadline must surface as degradation: {degradation}"
    );
    let final_stats = server.shutdown();
    assert_eq!(final_stats.deadline_missed, 1);
}

#[test]
fn keep_alive_serves_many_exchanges_on_one_stream() {
    let server = start(ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    for _ in 0..3 {
        let health = client::exchange(&mut stream, "GET", "/health", None).expect("health");
        assert_eq!(health.status, 200);
        let search = client::exchange(&mut stream, "POST", SEARCH, Some(CAMRY)).expect("search");
        assert_eq!(search.status, 200);
        assert_eq!(search.header("connection"), Some("keep-alive"));
    }
    let snapshot = server.stats();
    assert_eq!(
        snapshot.completed, 3,
        "all three searches served over one connection"
    );
    server.shutdown();
}

#[test]
fn framing_garbage_gets_a_400_and_a_close() {
    use std::io::Write;
    let server = start(ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"THIS IS NOT HTTP\r\n\r\n")
        .expect("write");
    let reply = {
        // Reuse the client's reply reader via a one-off exchange-less read:
        // the server answers 400 and closes.
        use std::io::Read;
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).expect("read");
        String::from_utf8(buf).expect("utf8")
    };
    assert!(reply.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{reply}");
    assert!(reply.contains("connection: close"), "{reply}");
    assert!(reply.contains("\"code\":\"bad_request\""), "{reply}");
    server.shutdown();
}

#[test]
fn shutdown_under_load_drops_no_replies() {
    let server = start(ServeConfig {
        workers: 2,
        queue_capacity: 32,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut served = 0u64;
                for _ in 0..10 {
                    match client::request(addr, "POST", SEARCH, Some(CAMRY)) {
                        Ok(reply) if reply.status == 200 => served += 1,
                        // 429/503 are valid refusals; transport errors
                        // mean the listener is already gone.
                        Ok(_) => {}
                        Err(_) => break,
                    }
                }
                served
            })
        })
        .collect();
    // Shut down while the clients are mid-burst.
    std::thread::sleep(Duration::from_millis(200));
    let final_stats = server.shutdown();
    let served_by_clients: u64 = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .sum();
    assert_eq!(
        final_stats.replies_dropped, 0,
        "drain-before-snapshot must redeem every admitted ticket: {final_stats:#?}"
    );
    assert_eq!(
        final_stats.completed + final_stats.deadline_missed,
        final_stats.admitted,
        "every admitted query is served exactly once: {final_stats:#?}"
    );
    assert!(
        served_by_clients >= final_stats.completed.saturating_sub(1),
        "replies the pool completed were delivered to clients: {served_by_clients} vs {final_stats:#?}"
    );
}
