//! Reproduces **Table 2** (offline computation time).
use aimq_eval::{experiments::table2, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Table 2: offline computation time", scale);
    let result = table2::run(scale, 42);
    println!("{}", result.render());
    println!(
        "AIMQ cheaper than ROCK on both datasets: {}",
        result.aimq_cheaper()
    );
}
