//! Reproduces **Figure 8** (simulated user study, average MRR).
use aimq_eval::{experiments::fig8, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Figure 8: simulated user study (MRR)", scale);
    let result = fig8::run(scale, 42);
    println!("{}", result.render());
    println!("{}", result.render_quality());
    println!("GuidedRelax wins on MRR: {}", result.guided_wins());
    println!(
        "GuidedRelax extracts the most relevant answers: {}",
        result.guided_extracts_most_relevant()
    );
}
