//! Reproduces **Figures 6 & 7** (efficiency of Guided vs Random relaxation).
use aimq_eval::{experiments::fig67, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Figures 6 & 7: query relaxation efficiency", scale);
    let result = fig67::run(scale, 42);
    println!("{}", result.render());
}
