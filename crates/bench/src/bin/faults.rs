//! Runs the **fault matrix** (graceful-degradation extension): CarDB
//! workload under `none`/`flaky`/`hostile` source-fault profiles through
//! the retry/breaker stack, reporting top-k recall vs the fault-free run.
use aimq_eval::{experiments::faults, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Fault matrix: degradation under source failures", scale);
    let result = faults::run(scale, 42);
    println!("{}", result.render());
}
