//! Runs the **ablation study**: answer quality under different attribute-
//! importance sources (mined / smoothed / uniform / query-log driven).
use aimq_eval::{experiments::ablation, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Extension: importance-source ablation", scale);
    let result = ablation::run(scale, 42);
    println!("{}", result.render());
}
