//! Reproduces **Figure 5** (similarity graph for Make).
use aimq_eval::{experiments::fig5, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Figure 5: similarity graph for Make", scale);
    let result = fig5::run(scale, 42);
    println!("{}", result.render());
    if let (Some(fc), Some(fb)) = (result.sim("Ford", "Chevrolet"), result.sim("Ford", "BMW")) {
        println!("Ford~Chevrolet = {fc:.3}, Ford~BMW = {fb:.3}");
    }
}
