//! Reproduces **Table 3** (robust similarity estimation).
use aimq_eval::{experiments::table3, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Table 3: robust similarity estimation", scale);
    let result = table3::run(scale, 42);
    println!("{}", result.render());
    println!(
        "Top similar value agrees between sample and full data: {}",
        result.top_value_agrees()
    );
}
