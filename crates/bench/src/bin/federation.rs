//! Runs the **federation** experiment (scatter-gather extension): CarDB
//! sharded into 8 simulated autonomous sources with 2-way replicated
//! fragments, replaying the workload while 0/1/2/4 sources run the
//! `hostile` profile; reports top-k recall vs the fault-free federated
//! run plus the per-source failure/hedge counters.
use aimq_eval::{experiments::federation, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Federation: recall vs number of failed sources", scale);
    let result = federation::run(scale, 42);
    println!("{}", result.render());
}
