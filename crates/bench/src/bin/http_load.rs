//! Runs the **http_load** extension: an open-loop load generator
//! replaying the CarDB imprecise-query log against a live `aimq-http`
//! front door over real sockets, at a ladder of configured arrival
//! rates. Reports per-rate goodput, typed 429 rejections, and a
//! power-of-two latency histogram; finds the saturation knee (the first
//! rate where 2xx goodput falls below 90% of offered load); writes the
//! whole trajectory to `results/BENCH_http.json`.
//!
//! The stack is the serve bench's production shape — striped shared
//! cache over a simulated 3 ms source round-trip over the in-memory
//! CarDB — behind one HTTP server that lives across the whole ladder,
//! so later rungs run cache-warm exactly like a long-lived deployment.
//!
//! Exit status is nonzero if any rung observed a 5xx response or an
//! empty latency histogram: the front door must degrade by refusing
//! (429) or shedding to partials (200), never by erroring.

use std::sync::Arc;
use std::time::Duration;

use aimq_catalog::{ImpreciseQuery, Json, Schema, SelectionQuery, Value};
use aimq_data::CarDb;
use aimq_eval::experiments::common::{pick_query_rows, train_cardb};
use aimq_eval::Scale;
use aimq_http::load::{run_open_loop, LoadConfig, LoadReport};
use aimq_http::{AimqHttpServer, HttpConfig};
use aimq_serve::ServeConfig;
use aimq_storage::{
    AccessStats, CachedWebDb, InMemoryWebDb, QueryError, QueryPage, Relation, WebDatabase,
};

/// Simulated source round trip per cache-missing probe (mirrors the
/// serve bench's `RTT_MICROS`).
const RTT_MICROS: u64 = 3_000;

/// Worker threads behind the front door.
const WORKERS: usize = 4;

/// Admission-queue capacity: offered load beyond `WORKERS + QUEUE` in
/// flight is refused with a typed 429.
const QUEUE_CAPACITY: usize = 32;

/// Goodput fraction below which a rung counts as saturated.
const KNEE_FRACTION: f64 = 0.9;

/// A [`WebDatabase`] decorator charging a fixed wall-clock round trip
/// per probe (the network hop to an autonomous source). Sits under the
/// cache: hits stay local, misses travel.
struct SimulatedRttDb<D> {
    inner: D,
    rtt: Duration,
}

impl<D: WebDatabase> WebDatabase for SimulatedRttDb<D> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    // aimq-probe: entry -- bench harness wrapper; adds fixed RTT, accounting stays on the inner db's AccessStats
    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        std::thread::sleep(self.rtt);
        self.inner.try_query(query)
    }

    fn stats(&self) -> AccessStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

/// The query log as HTTP bodies: each body binds every non-null
/// attribute of a probe tuple, in schema order — the same bindings
/// `ImpreciseQuery::from_tuple` would produce in process.
fn query_bodies(relation: &Relation, rows: &[u32]) -> Vec<String> {
    let schema = relation.schema();
    rows.iter()
        .map(|&row| {
            let tuple = relation.tuple(row);
            let pairs = schema
                .attributes()
                .iter()
                .enumerate()
                .filter_map(|(i, attr)| {
                    let value = tuple.values().get(i)?;
                    if matches!(value, Value::Null) {
                        None
                    } else {
                        Some((attr.name().to_string(), value.to_json()))
                    }
                })
                .collect();
            Json::Obj(vec![("query".to_string(), Json::Obj(pairs))]).to_string_compact()
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble(
        "HTTP load: open-loop saturation sweep over the front door",
        scale,
    );

    let seed = 42u64;
    let relation = CarDb::generate(scale.size(10_000), seed);
    let sample = relation.random_sample(scale.size(5_000), seed.wrapping_add(1));
    let system = Arc::new(train_cardb(&sample));
    let n_queries = scale.count(40);
    let rows = pick_query_rows(&relation, n_queries, seed.wrapping_add(2));
    let bodies = query_bodies(&relation, &rows);
    // The bodies must parse back into valid queries; fail fast here
    // rather than as a wall of 400s.
    for body in &bodies {
        let parsed = Json::parse(body).expect("body is JSON");
        assert!(parsed.get("query").is_some(), "body shape");
    }
    for &row in &rows {
        ImpreciseQuery::from_tuple(&relation.tuple(row)).expect("non-null probe tuple");
    }

    let stack: Arc<dyn WebDatabase> = Arc::new(CachedWebDb::with_stripes(
        SimulatedRttDb {
            inner: InMemoryWebDb::new(relation.clone()),
            rtt: Duration::from_micros(RTT_MICROS),
        },
        4096,
        8,
    ));
    let server = AimqHttpServer::start(
        Arc::clone(&system),
        stack,
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            index: "cardb".to_string(),
            serve: ServeConfig {
                workers: WORKERS,
                queue_capacity: QUEUE_CAPACITY,
                deadline_ticks: 0,
                ticks_per_probe: 1,
                ..ServeConfig::default()
            },
        },
    )
    .expect("bind 127.0.0.1:0");
    let addr = server.addr();
    println!("front door listening on {addr} ({WORKERS} workers, queue {QUEUE_CAPACITY})");

    // Warmup: replay the log once, serially, so the shared cache
    // absorbs every distinct query's probe set before measurement
    // begins. Without this the first rung pays the 3 ms-per-probe cold
    // cost and reports a false saturation knee that the very next
    // (faster) rung contradicts; the ladder is meant to measure the
    // steady state of a long-lived deployment.
    for body in &bodies {
        let reply = aimq_http::client::request(addr, "POST", "/indexes/cardb/search", Some(body))
            .expect("warmup reply");
        assert_eq!(reply.status, 200, "warmup must be admitted: {}", reply.body);
    }
    println!(
        "cache warmed: {} distinct queries replayed once",
        bodies.len()
    );

    // The arrival-rate ladder. Quick scale keeps the whole sweep inside
    // a CI smoke budget; full scale sweeps past the pool's capacity.
    let (rates, duration_secs): (&[f64], f64) = if scale.divisor() == 1 {
        (&[100.0, 400.0, 800.0, 1600.0, 3200.0], 2.0)
    } else {
        (&[40.0, 160.0, 640.0], 0.6)
    };

    let mut reports: Vec<LoadReport> = Vec::new();
    for &rate in rates {
        let config = LoadConfig {
            rate_per_sec: rate,
            requests: ((rate * duration_secs).ceil() as usize).max(8),
        };
        let report = run_open_loop(addr, "/indexes/cardb/search", &bodies, &config);
        println!(
            "rate {:>7.0}/s: 2xx {:>5} ({:>7.1}/s) 429 {:>5} 4xx {:>3} 5xx {:>3} io-err {:>3}  p50 {:>7}us p99 {:>8}us max {:>8}us{}",
            report.offered_rate,
            report.completed_2xx,
            report.achieved_2xx_rate,
            report.rejected_429,
            report.other_4xx,
            report.responses_5xx,
            report.transport_errors,
            report.p50_us,
            report.p99_us,
            report.max_us,
            if report.saturated(KNEE_FRACTION) { "  [saturated]" } else { "" },
        );
        reports.push(report);
    }

    let knee = reports
        .iter()
        .find(|r| r.saturated(KNEE_FRACTION))
        .map(|r| r.offered_rate);
    match knee {
        Some(rate) => println!("saturation knee: first saturated rung at {rate:.0}/s offered"),
        None => println!("saturation knee: not reached on this ladder"),
    }

    let final_stats = server.shutdown();

    let any_5xx = reports.iter().any(|r| r.responses_5xx > 0);
    let histogram_empty = reports
        .iter()
        .any(|r| r.latency_hist_us.iter().sum::<u64>() == 0);

    let artifact = Json::obj(vec![
        ("benchmark", Json::Str("http_load".to_string())),
        (
            "description",
            Json::Str(format!(
                "Open-loop load sweep over the aimq-http front door: the CarDB \
                 imprecise-query log ({n_queries} queries, seed {seed}) replayed \
                 over real sockets at configured arrival rates against {WORKERS} \
                 workers (queue {QUEUE_CAPACITY}) on a striped shared cache over \
                 a simulated {RTT_MICROS}us source round trip. Latency is \
                 measured from each request's scheduled send time (coordinated \
                 omission counted). saturated = 2xx goodput below {KNEE_FRACTION} \
                 of offered rate. Regenerate with: cargo run -p aimq-bench \
                 --release --bin http_load"
            )),
        ),
        ("scale", Json::Str(scale.to_string())),
        ("seed", Json::Num(seed as f64)),
        ("n_queries", Json::Num(n_queries as f64)),
        ("rtt_micros", Json::Num(RTT_MICROS as f64)),
        ("workers", Json::Num(WORKERS as f64)),
        ("queue_capacity", Json::Num(QUEUE_CAPACITY as f64)),
        ("duration_secs_per_rate", Json::Num(duration_secs)),
        ("knee_fraction", Json::Num(KNEE_FRACTION)),
        (
            "rates",
            Json::Arr(reports.iter().map(LoadReport::to_json).collect()),
        ),
        (
            "saturation_knee_rate",
            knee.map(Json::Num).unwrap_or(Json::Null),
        ),
        ("final_serve_stats", final_stats.to_json()),
    ]);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_http.json", artifact.to_string_compact())
        .expect("write results/BENCH_http.json");
    println!("wrote results/BENCH_http.json");

    if any_5xx {
        eprintln!("FAIL: the front door returned 5xx under load");
        std::process::exit(1);
    }
    if histogram_empty {
        eprintln!("FAIL: a rung produced an empty latency histogram");
        std::process::exit(1);
    }
    println!(
        "ok: zero 5xx across {} rungs; every histogram non-empty",
        reports.len()
    );
}
