//! Runs the **probe economy** extension: a repeated CarDB query log
//! answered by the seed engine, the dedup planner, and the dedup planner
//! plus the cross-call memoizing cache, per fault profile — reporting
//! source queries issued, cache hits and top-k identity.
use aimq_eval::{experiments::cache, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Probe economy: dedup + cache vs the seed engine", scale);
    let result = cache::run(scale, 42);
    println!("{}", result.render());
}
