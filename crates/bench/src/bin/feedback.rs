//! Runs the **relevance feedback** extension experiment (the paper's
//! Section 7 plan): per-round top-10 quality as a simulated user tunes
//! attribute weights.
use aimq_eval::{experiments::feedback, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Extension: relevance feedback", scale);
    let result = feedback::run(scale, 42);
    println!("{}", result.render());
    println!(
        "Feedback improves the ranking: {} (gain {:+.3})",
        result.improves(),
        result.gain()
    );
}
