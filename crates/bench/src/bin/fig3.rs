//! Reproduces **Figure 3** (robustness of attribute ordering).
use aimq_eval::{experiments::fig3, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Figure 3: robustness of attribute ordering", scale);
    let result = fig3::run(scale, 42);
    println!("{}", result.render());
    println!(
        "Relative ordering of substantially dependent attributes stable \
         across samples: {}",
        result.order_consistent(0.5)
    );
}
