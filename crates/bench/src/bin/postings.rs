//! Runs the **posting-list executor** extension: CarDB relaxation plans
//! at the Figure 3/4 sample ladder, executed by the shared
//! `PlanExecutor`, the one-shot posting path and the legacy executor —
//! reporting byte-identity and the posting work the plan memo shared.
use aimq_eval::{experiments::postings, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Posting-list executor: shared-plan work vs one-shot", scale);
    let result = postings::run(scale, 42);
    println!("{}", result.render());
}
