//! Reproduces **Figure 4** (robustness in mining approximate keys).
use aimq_eval::{experiments::fig4, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Figure 4: robustness in mining keys", scale);
    let result = fig4::run(scale, 42);
    println!("{}", result.render());
    for (i, size) in result.sample_sizes.iter().enumerate() {
        println!(
            "{size} tuples: best key {}, {} full-data keys missing",
            result.best_key[i],
            result.missing_in(i)
        );
    }
    println!(
        "Best key stable across samples: {}",
        result.best_key_stable()
    );
}
