//! Reproduces **Figure 9** (CensusDB classification accuracy).
use aimq_eval::{experiments::fig9, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Figure 9: CensusDB top-k accuracy", scale);
    let result = fig9::run(scale, 42);
    println!("{}", result.render());
    println!(
        "avg answers per query: AIMQ {:.1}, ROCK {:.1}",
        result.avg_aimq_answers, result.avg_rock_answers
    );
    println!(
        "AIMQ dominates ROCK at every k: {}",
        result.aimq_dominates()
    );
}
