//! Runs the **serve bench** extension: a CarDB query log replayed
//! through the concurrent serving runtime at 1/2/4/8 workers over a
//! shared striped cache and a simulated source round-trip, reporting
//! wall-clock throughput, speedup, and per-query identity against the
//! single-threaded engine.
use aimq_eval::{experiments::serve, Scale};

fn main() {
    let scale = Scale::from_env();
    aimq_bench::preamble("Serve bench: concurrent query-serving throughput", scale);
    let result = serve::run(scale, 42);
    println!("{}", result.render());
    println!(
        "speedup at 8 workers: {:.2}x  (identity: {})",
        result.speedup(8),
        if result.all_identical() {
            "all rungs byte-identical"
        } else {
            "DIVERGED"
        }
    );
}
