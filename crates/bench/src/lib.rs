//! # aimq-bench
//!
//! Reproduction binaries (one per table/figure of the paper) plus
//! Criterion micro-benchmarks for the performance-sensitive kernels.
//!
//! Run an experiment at paper scale:
//!
//! ```text
//! cargo run -p aimq-bench --release --bin fig6_7
//! ```
//!
//! or throttled (divide all dataset sizes by N):
//!
//! ```text
//! AIMQ_SCALE=10 cargo run -p aimq-bench --release --bin fig6_7
//! ```

/// Shared entry preamble for the experiment binaries.
pub fn preamble(name: &str, scale: aimq_eval::Scale) {
    println!("== {name} (scale: {scale}) ==");
}
