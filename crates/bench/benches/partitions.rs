//! Criterion benchmarks for the TANE partition kernel: building stripped
//! partitions from encoded columns, the stripped product, and the g3
//! error procedures. These dominate dependency-mining time, so the
//! numbers here explain the AIMQ rows of Table 2.

use aimq_afd::{BucketConfig, EncodedRelation, Partition};
use aimq_catalog::AttrId;
use aimq_data::CarDb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn encoded(n: usize) -> EncodedRelation {
    let rel = CarDb::generate(n, 7);
    EncodedRelation::encode(&rel, &BucketConfig::for_schema(rel.schema()))
}

fn bench_from_codes(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_from_codes");
    for n in [10_000usize, 50_000] {
        let enc = encoded(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &enc, |b, enc| {
            b.iter(|| Partition::from_codes(black_box(enc.codes(AttrId(1)))));
        });
    }
    group.finish();
}

fn bench_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_product");
    for n in [10_000usize, 50_000] {
        let enc = encoded(n);
        let make = Partition::from_codes(enc.codes(AttrId(0)));
        let year = Partition::from_codes(enc.codes(AttrId(2)));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(make, year),
            |b, (make, year)| {
                b.iter(|| black_box(make).product(black_box(year)));
            },
        );
    }
    group.finish();
}

fn bench_afd_error(c: &mut Criterion) {
    let mut group = c.benchmark_group("g3_afd_error");
    for n in [10_000usize, 50_000] {
        let enc = encoded(n);
        let model = Partition::from_codes(enc.codes(AttrId(1)));
        let make = Partition::from_codes(enc.codes(AttrId(0)));
        let joint = model.product(&make);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(model, joint),
            |b, (model, joint)| {
                b.iter(|| black_box(model).afd_error(black_box(joint)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_from_codes, bench_product, bench_afd_error);
criterion_main!(benches);
