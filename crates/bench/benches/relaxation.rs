//! Criterion benchmarks for online query answering: the full Algorithm 1
//! pipeline under GuidedRelax and RandomRelax, plus an ablation of the
//! relaxation depth.

use aimq::{AimqSystem, EngineConfig, GuidedRelax, RandomRelax, TrainConfig};
use aimq_catalog::ImpreciseQuery;
use aimq_data::CarDb;
use aimq_storage::InMemoryWebDb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn setup(n: usize) -> (InMemoryWebDb, AimqSystem, Vec<ImpreciseQuery>) {
    let db = InMemoryWebDb::new(CarDb::generate(n, 7));
    let sample = db.relation().random_sample(n / 4, 1);
    let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
    let queries: Vec<ImpreciseQuery> = (0..5u32)
        .map(|i| ImpreciseQuery::from_tuple(&db.relation().tuple(i * 37)).unwrap())
        .collect();
    (db, system, queries)
}

fn bench_answering(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_imprecise_query");
    group.sample_size(10);
    let (db, system, queries) = setup(25_000);
    let config = EngineConfig {
        t_sim: 0.6,
        top_k: 10,
        max_relax_level: 2,
        target_relevant: Some(20),
        ..EngineConfig::default()
    };
    group.bench_function("guided", |b| {
        b.iter(|| {
            let mut strategy = GuidedRelax::new(system.ordering().clone());
            for q in &queries {
                black_box(system.answer_with_strategy(&db, q, &config, &mut strategy));
            }
        });
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            let mut strategy = RandomRelax::new(9);
            for q in &queries {
                black_box(system.answer_with_strategy(&db, q, &config, &mut strategy));
            }
        });
    });
    group.finish();
}

/// Ablation: relaxation depth. Deeper relaxation reaches more candidates
/// but issues combinatorially more queries.
fn bench_relax_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("relax_depth_ablation");
    group.sample_size(10);
    let (db, system, queries) = setup(25_000);
    for depth in [1usize, 2, 3] {
        let config = EngineConfig {
            t_sim: 0.6,
            top_k: 10,
            max_relax_level: depth,
            target_relevant: Some(20),
            ..EngineConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(depth), &config, |b, config| {
            b.iter(|| {
                let mut strategy = GuidedRelax::new(system.ordering().clone());
                for q in &queries {
                    black_box(system.answer_with_strategy(&db, q, config, &mut strategy));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_answering, bench_relax_depth);
criterion_main!(benches);
