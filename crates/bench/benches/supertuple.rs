//! Criterion benchmarks for supertuple generation and full
//! similarity-model construction — the two AIMQ phases of Table 2. The
//! paper's observation that similarity-estimation cost tracks the number
//! of AV-pairs, not tuples, is visible here: doubling the tuple count
//! roughly doubles only the (cheap) supertuple scan.

use aimq_afd::{AttributeOrdering, BucketConfig, EncodedRelation, MinedDependencies, TaneConfig};
use aimq_catalog::AttrId;
use aimq_data::CarDb;
use aimq_sim::{build_supertuples, SimConfig, SimilarityModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_supertuple_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("supertuple_generation");
    for n in [10_000usize, 25_000, 50_000] {
        let rel = CarDb::generate(n, 7);
        let enc = EncodedRelation::encode(&rel, &BucketConfig::for_schema(rel.schema()));
        // Model is the widest categorical attribute (~100 values).
        group.bench_with_input(BenchmarkId::from_parameter(n), &enc, |b, enc| {
            b.iter(|| build_supertuples(black_box(enc), AttrId(1)));
        });
    }
    group.finish();
}

fn bench_similarity_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_model_build");
    group.sample_size(10);
    for n in [5_000usize, 25_000] {
        let rel = CarDb::generate(n, 7);
        let bucket = BucketConfig::for_schema(rel.schema());
        let enc = EncodedRelation::encode(&rel, &bucket);
        let mined = MinedDependencies::mine(&enc, &TaneConfig::default());
        let ordering = AttributeOrdering::derive(rel.schema(), &mined).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| {
                SimilarityModel::build(
                    black_box(rel),
                    &ordering,
                    &SimConfig {
                        bucket: bucket.clone(),
                    },
                )
            });
        });
    }
    group.finish();
}

/// Ablation: sequential vs crossbeam-parallel matrix mining.
fn bench_parallel_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_model_parallel_ablation");
    group.sample_size(10);
    let rel = CarDb::generate(25_000, 7);
    let bucket = BucketConfig::for_schema(rel.schema());
    let enc = EncodedRelation::encode(&rel, &bucket);
    let mined = MinedDependencies::mine(&enc, &TaneConfig::default());
    let ordering = AttributeOrdering::derive(rel.schema(), &mined).unwrap();
    let config = SimConfig {
        bucket: bucket.clone(),
    };
    group.bench_function("sequential", |b| {
        b.iter(|| SimilarityModel::build(black_box(&rel), &ordering, &config));
    });
    group.bench_function("parallel", |b| {
        b.iter(|| SimilarityModel::build_parallel(black_box(&rel), &ordering, &config));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_supertuple_generation,
    bench_similarity_model,
    bench_parallel_build
);
criterion_main!(benches);
