//! Criterion benchmarks for probe-plan dedup and the memoizing query
//! cache: the wall-clock side of the probe-economy story. The eval
//! runner (`cargo run -p aimq-bench --bin cache`) counts the probes
//! these layers eliminate; this bench measures what that elimination
//! buys end to end when the same query log is answered (a) by the seed
//! engine, (b) with the per-call planner memo, and (c) with the
//! cross-call [`CachedWebDb`] warm.

use aimq::{AimqSystem, EngineConfig, TrainConfig};
use aimq_catalog::{AttrId, ImpreciseQuery, Predicate, SelectionQuery, Value};
use aimq_data::CarDb;
use aimq_storage::{CachedWebDb, InMemoryWebDb, WebDatabase};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup(n: usize) -> (InMemoryWebDb, AimqSystem, Vec<ImpreciseQuery>) {
    let db = InMemoryWebDb::new(CarDb::generate(n, 7));
    let sample = db.relation().random_sample(n / 4, 1);
    let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
    let queries: Vec<ImpreciseQuery> = (0..5u32)
        .map(|i| ImpreciseQuery::from_tuple(&db.relation().tuple(i * 37)).unwrap())
        .collect();
    (db, system, queries)
}

/// The same query log answered with and without the per-call planner
/// memo: the delta is what canonicalization + BTreeMap replay cost or
/// save against a fast in-memory source. (Against a real networked
/// source the saved probes dominate; this measures the bookkeeping.)
fn bench_planner_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_plan_dedup");
    group.sample_size(10);
    let (db, system, queries) = setup(25_000);
    let base = EngineConfig {
        t_sim: 0.6,
        top_k: 10,
        target_relevant: Some(20),
        ..EngineConfig::default()
    };
    let no_dedup = EngineConfig {
        dedup_probes: false,
        ..base
    };
    group.bench_function("seed_engine", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(system.answer(&db, q, &no_dedup));
            }
        });
    });
    group.bench_function("dedup_planner", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(system.answer(&db, q, &base));
            }
        });
    });
    group.finish();
}

/// Answering through a warm `CachedWebDb`: after one priming pass every
/// probe is a memo hit, so this measures the cache's steady-state serve
/// path (canonicalize, BTreeMap lookup, page clone) against the bare
/// source's scan.
fn bench_warm_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_query_cache");
    group.sample_size(10);
    let (db, system, queries) = setup(25_000);
    let config = EngineConfig {
        t_sim: 0.6,
        top_k: 10,
        target_relevant: Some(20),
        ..EngineConfig::default()
    };
    group.bench_function("bare_source", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(system.answer(&db, q, &config));
            }
        });
    });
    let cached = CachedWebDb::with_default_capacity(InMemoryWebDb::new(db.relation().clone()));
    // Priming pass: the benchmark below serves from a warm memo.
    for q in &queries {
        black_box(system.answer(&cached, q, &config));
    }
    group.bench_function("warm_cache", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(system.answer(&cached, q, &config));
            }
        });
    });
    group.finish();
}

/// The cache's key-derivation fast path in isolation: a lookup with an
/// already-canonical query (the engine's probe-plan case, which borrows
/// instead of cloning/sorting) against one whose predicates arrive
/// permuted (the worst case, which must clone and sort). Guards the
/// satellite claim that storing canonical probes in the plan made the
/// per-lookup canonicalization free without regressing the slow path.
fn bench_canonicalize_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_canonicalize");
    group.sample_size(20);
    let db = InMemoryWebDb::new(CarDb::generate(5_000, 7));
    let cached = CachedWebDb::with_default_capacity(db);
    let canonical = SelectionQuery::new(vec![
        Predicate::eq(AttrId(0), Value::cat("Toyota")),
        Predicate::eq(AttrId(1), Value::cat("Camry")),
        Predicate::eq(AttrId(4), Value::cat("Black")),
    ])
    .canonicalize();
    assert!(canonical.is_canonical());
    let permuted = SelectionQuery::new(canonical.predicates().iter().rev().cloned().collect());
    assert!(!permuted.is_canonical());
    // Prime once; both benches below measure warm-hit lookups.
    black_box(cached.try_query(&canonical).ok());
    group.bench_function("hit_canonical_borrowed", |b| {
        b.iter(|| black_box(cached.try_query(black_box(&canonical)).ok()));
    });
    group.bench_function("hit_permuted_cloned", |b| {
        b.iter(|| black_box(cached.try_query(black_box(&permuted)).ok()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_planner_dedup,
    bench_warm_cache,
    bench_canonicalize_path
);
criterion_main!(benches);
