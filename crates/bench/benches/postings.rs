//! Criterion benchmarks for the posting-list executor: the wall-clock
//! side of the shared-plan story. The eval runner
//! (`cargo run -p aimq-bench --release --bin postings`) counts the
//! posting terms and intersections the plan memo eliminates; this bench
//! measures what selection and plan execution cost end to end on CarDB
//! at the Figure 3/4 sample sizes — (a) one-shot selection through the
//! legacy hash/range executor vs the posting path, and (b) a whole
//! relaxation plan executed query-at-a-time vs through one shared
//! [`PlanExecutor`]. Measured numbers are recorded in
//! `results/BENCH_postings.json`.

use aimq_catalog::{AttrId, Predicate, SelectionQuery};
use aimq_data::CarDb;
use aimq_storage::{execute_rows, execute_rows_legacy, PlanExecutor, Relation, RowId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// The Figure 3/4 sample ladder, trimmed to keep the bench short.
const SIZES: [usize; 2] = [15_000, 50_000];

/// The relaxation plan for one base tuple: fully bound query, every
/// single-attribute relaxation, then the base again (the duplicate that
/// overlapping per-tuple plans produce). Mirrors the eval runner.
fn relaxation_plan(relation: &Relation, row: RowId) -> Vec<SelectionQuery> {
    let tuple = relation.tuple(row);
    let full: Vec<Predicate> = tuple
        .values()
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_null())
        .map(|(i, v)| Predicate::eq(AttrId(i), v.clone()))
        .collect();
    let base = SelectionQuery::new(full.clone()).canonicalize();
    let mut plan = vec![base.clone()];
    for drop in 0..full.len() {
        let kept: Vec<Predicate> = full
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != drop)
            .map(|(_, p)| p.clone())
            .collect();
        plan.push(SelectionQuery::new(kept).canonicalize());
    }
    plan.push(base);
    plan
}

fn workload(n: usize) -> (Relation, Vec<SelectionQuery>) {
    let relation = CarDb::generate(n, 7);
    let step = (relation.len() / 8).max(1) as RowId;
    let queries: Vec<SelectionQuery> = (0..8)
        .flat_map(|i| relaxation_plan(&relation, i * step))
        .collect();
    (relation, queries)
}

/// One-shot selection: the legacy hash/range executor vs the posting
/// path, over the same mixed query set (fully bound conjunctions and
/// their single-attribute relaxations).
fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_executor");
    group.sample_size(10);
    for n in SIZES {
        let (relation, queries) = workload(n);
        group.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(execute_rows_legacy(&relation, black_box(q)));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("postings", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(execute_rows(&relation, black_box(q)));
                }
            });
        });
    }
    group.finish();
}

/// Whole relaxation plans: query-at-a-time one-shot execution vs one
/// shared `PlanExecutor` per plan (what a source's `try_query_plan`
/// builds) — the memo turns repeated terms and shared conjunction
/// prefixes into lookups.
fn bench_shared_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_plan");
    group.sample_size(10);
    for n in SIZES {
        let relation = CarDb::generate(n, 7);
        let step = (relation.len() / 8).max(1) as RowId;
        let plans: Vec<Vec<SelectionQuery>> = (0..8)
            .map(|i| relaxation_plan(&relation, i * step))
            .collect();
        group.bench_with_input(BenchmarkId::new("one_shot", n), &n, |b, _| {
            b.iter(|| {
                for plan in &plans {
                    for q in plan {
                        black_box(execute_rows(&relation, black_box(q)));
                    }
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("plan_executor", n), &n, |b, _| {
            b.iter(|| {
                for plan in &plans {
                    let mut exec = PlanExecutor::new(&relation);
                    for q in plan {
                        black_box(exec.execute(black_box(q)));
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_shared_plan);
criterion_main!(benches);
