//! Criterion benchmarks for the bag-semantics Jaccard coefficient — the
//! inner loop of `VSim` estimation (`O(k²)` bag pairs per categorical
//! attribute).

use aimq_sim::Bag;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_bag(distinct: usize, total: usize, seed: u64) -> Bag {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Bag::from_codes((0..total).map(|_| rng.random_range(0..distinct as u32)))
}

fn bench_jaccard(c: &mut Criterion) {
    let mut group = c.benchmark_group("bag_jaccard");
    for distinct in [16usize, 128, 1024] {
        let a = random_bag(distinct, distinct * 8, 1);
        let b = random_bag(distinct, distinct * 8, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(distinct),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| black_box(a).jaccard(black_box(b)));
            },
        );
    }
    group.finish();
}

fn bench_bag_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("bag_from_codes");
    for total in [1_000usize, 10_000] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let codes: Vec<u32> = (0..total).map(|_| rng.random_range(0..64u32)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(total), &codes, |b, codes| {
            b.iter(|| Bag::from_codes(black_box(codes).iter().copied()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_jaccard, bench_bag_construction);
criterion_main!(benches);
