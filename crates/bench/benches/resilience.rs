//! Criterion benchmarks for the fault-tolerant access stack: the
//! per-query overhead of the resilience decorators on a healthy source
//! (the price every production probe pays), and full Algorithm 1 under
//! the `flaky` fault profile with retries absorbing the faults.

use aimq::{AimqSystem, EngineConfig, GuidedRelax, TrainConfig};
use aimq_catalog::ImpreciseQuery;
use aimq_data::CarDb;
use aimq_storage::{FaultInjectingWebDb, FaultProfile, InMemoryWebDb, ResilientWebDb, RetryPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn setup(n: usize) -> (InMemoryWebDb, AimqSystem, Vec<ImpreciseQuery>) {
    let db = InMemoryWebDb::new(CarDb::generate(n, 7));
    let sample = db.relation().random_sample(n / 4, 1);
    let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
    let queries: Vec<ImpreciseQuery> = (0..5u32)
        .map(|i| ImpreciseQuery::from_tuple(&db.relation().tuple(i * 37)).unwrap())
        .collect();
    (db, system, queries)
}

/// Decorator overhead on a healthy source: bare vs fault-stack (profile
/// `none` + default retry policy). The delta is pure bookkeeping — fault
/// schedule draws, breaker checks, stats overlay.
fn bench_stack_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilience_stack_overhead");
    group.sample_size(10);
    let (db, system, queries) = setup(25_000);
    let config = EngineConfig {
        t_sim: 0.6,
        top_k: 10,
        target_relevant: Some(20),
        ..EngineConfig::default()
    };
    group.bench_function("bare", |b| {
        b.iter(|| {
            let mut strategy = GuidedRelax::new(system.ordering().clone());
            for q in &queries {
                black_box(system.answer_with_strategy(&db, q, &config, &mut strategy));
            }
        });
    });
    let stacked = ResilientWebDb::new(
        FaultInjectingWebDb::new(
            InMemoryWebDb::new(db.relation().clone()),
            FaultProfile::none(),
            1,
        ),
        RetryPolicy::default(),
    );
    group.bench_function("stacked", |b| {
        b.iter(|| {
            let mut strategy = GuidedRelax::new(system.ordering().clone());
            for q in &queries {
                black_box(system.answer_with_strategy(&stacked, q, &config, &mut strategy));
            }
        });
    });
    group.finish();
}

/// Algorithm 1 against a 10%-transient source with retries: measures what
/// a realistically flaky deployment costs end to end (retried probes,
/// backoff bookkeeping, degradation accounting).
fn bench_flaky_answering(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_under_flaky_faults");
    group.sample_size(10);
    let (db, system, queries) = setup(25_000);
    let config = EngineConfig {
        t_sim: 0.6,
        top_k: 10,
        target_relevant: Some(20),
        ..EngineConfig::default()
    };
    let flaky = ResilientWebDb::new(
        FaultInjectingWebDb::new(
            InMemoryWebDb::new(db.relation().clone()),
            FaultProfile::flaky(),
            1,
        ),
        RetryPolicy::default(),
    );
    group.bench_function("flaky_with_retries", |b| {
        b.iter(|| {
            let mut strategy = GuidedRelax::new(system.ordering().clone());
            for q in &queries {
                black_box(system.answer_with_strategy(&flaky, q, &config, &mut strategy));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_stack_overhead, bench_flaky_answering);
criterion_main!(benches);
