//! Criterion benchmarks for end-to-end TANE mining (AFDs + approximate
//! keys) on both corpora, plus an ablation of the superkey-pruning
//! option. CensusDB's 13 attributes make the lattice much wider than
//! CarDB's 7 — the reason `census_tane()` caps the antecedent size.

use aimq_afd::{BucketConfig, EncodedRelation, MinedDependencies, TaneConfig};
use aimq_data::{CarDb, CensusDb};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cardb_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("tane_cardb");
    group.sample_size(10);
    for n in [5_000usize, 25_000] {
        let rel = CarDb::generate(n, 7);
        let enc = EncodedRelation::encode(&rel, &BucketConfig::for_schema(rel.schema()));
        let config = TaneConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &enc, |b, enc| {
            b.iter(|| MinedDependencies::mine(black_box(enc), &config));
        });
    }
    group.finish();
}

fn bench_census_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("tane_census");
    group.sample_size(10);
    let (rel, _) = CensusDb::generate(10_000, 7);
    let enc = EncodedRelation::encode(&rel, &BucketConfig::for_schema(rel.schema()));
    let config = TaneConfig {
        max_lhs_size: 2,
        max_key_size: 3,
        ..TaneConfig::default()
    };
    group.bench_function("10000x13attrs", |b| {
        b.iter(|| MinedDependencies::mine(black_box(&enc), &config));
    });
    group.finish();
}

/// Ablation: DESIGN.md calls out superkey pruning as a trade-off between
/// fidelity (keep every AFD for Algorithm 2's sums) and speed.
fn bench_superkey_pruning_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tane_prune_ablation");
    group.sample_size(10);
    let rel = CarDb::generate(10_000, 7);
    let enc = EncodedRelation::encode(&rel, &BucketConfig::for_schema(rel.schema()));
    for prune in [false, true] {
        let config = TaneConfig {
            prune_superkeys: prune,
            ..TaneConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(if prune { "pruned" } else { "full" }),
            &config,
            |b, config| {
                b.iter(|| MinedDependencies::mine(black_box(&enc), config));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cardb_mining,
    bench_census_mining,
    bench_superkey_pruning_ablation
);
criterion_main!(benches);
