//! Criterion benchmarks for the ROCK baseline's phases: link computation
//! (O(n·d²)), agglomerative clustering and labeling — the ROCK rows of
//! Table 2. The super-linear growth with sample size is the paper's
//! argument for AIMQ's cheaper preprocessing.

use aimq_afd::{BucketConfig, EncodedRelation};
use aimq_data::CarDb;
use aimq_rock::{cluster_greedy, compute_links, PointSet, RockConfig, RockModel};
use aimq_storage::RowId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn encoded(n: usize) -> EncodedRelation {
    let rel = CarDb::generate(n, 7);
    EncodedRelation::encode(&rel, &BucketConfig::for_schema(rel.schema()))
}

fn bench_links(c: &mut Criterion) {
    let mut group = c.benchmark_group("rock_links");
    group.sample_size(10);
    let enc = encoded(4_000);
    let points = PointSet::from_encoded(&enc);
    for n in [500usize, 1_000, 2_000] {
        let members: Vec<RowId> = (0..n as RowId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &members, |b, members| {
            b.iter(|| compute_links(black_box(&points), members, 0.25));
        });
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("rock_clustering");
    group.sample_size(10);
    let enc = encoded(4_000);
    let points = PointSet::from_encoded(&enc);
    let members: Vec<RowId> = (0..2_000).collect();
    let links = compute_links(&points, &members, 0.25);
    group.bench_function("2000pts", |b| {
        b.iter(|| cluster_greedy(black_box(&links), 2_000, 0.25, 25));
    });
    group.finish();
}

fn bench_full_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("rock_fit_with_labeling");
    group.sample_size(10);
    for n in [5_000usize, 10_000] {
        let enc = encoded(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &enc, |b, enc| {
            b.iter(|| {
                RockModel::fit(
                    black_box(enc),
                    RockConfig {
                        theta: 0.25,
                        target_clusters: 25,
                        sample_size: 1_000,
                        seed: 7,
                        min_cluster_size: 1,
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_links, bench_clustering, bench_full_fit);
criterion_main!(benches);
