use std::collections::HashSet;

use aimq_catalog::{AttrId, ImpreciseQuery, SelectionQuery, Tuple};
use aimq_sim::SimilarityModel;
use aimq_storage::WebDatabase;

use crate::base_query::derive_base_set;
use crate::bind::tuple_query_for;
use crate::RelaxationStrategy;

/// Tuning knobs of Algorithm 1. The paper leaves `Tsim` and `k` "tuned by
/// the system designers" (footnote 4); defaults follow the evaluation
/// section (Tsim sweeps 0.5–0.9, top-10 answers shown to users).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Similarity threshold `Tsim`: a relaxation result joins the extended
    /// set only if its similarity to its base tuple exceeds this.
    pub t_sim: f64,
    /// Number of ranked answers returned (`Top-k`).
    pub top_k: usize,
    /// Maximum number of attributes relaxed simultaneously.
    pub max_relax_level: usize,
    /// Cap on how many base-set tuples are expanded (each expansion issues
    /// a full relaxation-query sequence).
    pub max_base_tuples: usize,
    /// Optional early stop: end the whole search once this many relevant
    /// tuples (beyond the base set) are in the extended set. Figure 6/7's
    /// protocol stops at 20.
    pub target_relevant: Option<usize>,
    /// Cap on relaxation queries issued per base tuple. Wide schemas
    /// (CensusDB has 13 attributes) make the multi-attribute combination
    /// space explode; the cap keeps the greedy prefix — which contains
    /// the least-important relaxations — and drops the tail.
    pub max_steps_per_tuple: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            t_sim: 0.6,
            top_k: 10,
            max_relax_level: 2,
            max_base_tuples: 20,
            target_relevant: None,
            max_steps_per_tuple: 256,
        }
    }
}

/// The paper's efficiency bookkeeping (Section 6.3):
/// `Work/RelevantTuple = |T_Extracted| / |T_Relevant|` — "a measure of
/// the average number of tuples that an user would have to look at before
/// finding a relevant tuple".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Boolean queries issued against the source while answering.
    pub queries_issued: u64,
    /// Total tuples the source returned, duplicates included (raw access
    /// meter).
    pub tuples_extracted: u64,
    /// Distinct tuples examined (the paper's `T_Extracted`: a user looks
    /// at each retrieved tuple once, however many relaxation queries
    /// return it).
    pub tuples_examined: usize,
    /// Distinct tuples whose similarity cleared `Tsim`, base set included
    /// (the paper's `T_Relevant`).
    pub relevant_found: usize,
}

impl WorkStats {
    /// `Work/RelevantTuple`; `None` when nothing relevant was found.
    pub fn work_per_relevant(&self) -> Option<f64> {
        (self.relevant_found > 0).then(|| self.tuples_examined as f64 / self.relevant_found as f64)
    }
}

/// How an answer entered the extended set — the explainability hook:
/// "this Accord is here because the engine relaxed Make and Model of a
/// base-set Camry".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// The tuple satisfied the (possibly generalized) base query itself.
    BaseSet,
    /// The tuple came from outside the engine (e.g. a caller-supplied
    /// pool re-ranked by the feedback tuner).
    External,
    /// The tuple was retrieved by relaxing `relaxed_attrs` of the
    /// base-set tuple at index `base_index` (into the base set).
    Relaxed {
        /// Index of the originating tuple in the base set.
        base_index: usize,
        /// Attributes whose constraints were dropped.
        relaxed_attrs: Vec<AttrId>,
    },
}

/// One ranked answer.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAnswer {
    /// The answer tuple.
    pub tuple: Tuple,
    /// Its similarity to the *query* (the final ranking key).
    pub similarity: f64,
    /// How the engine found this tuple.
    pub provenance: Provenance,
}

/// The result of answering one imprecise query.
#[derive(Debug, Clone)]
pub struct AnswerSet {
    /// Top-k answers, descending similarity.
    pub answers: Vec<RankedAnswer>,
    /// Access-metering statistics for this query.
    pub stats: WorkStats,
    /// The (possibly generalized) precise query whose answers formed the
    /// base set.
    pub base_query: SelectionQuery,
    /// Size of the base set `|Abs|`.
    pub base_set_size: usize,
}

/// Algorithm 1 ("Finding Relevant Answers") of the paper.
///
/// `model` supplies both `Sim` functions (tuple–tuple for the `Tsim`
/// filter, query–tuple for the final ranking); `strategy` decides the
/// relaxation order (Guided vs Random).
pub fn answer_imprecise_query(
    db: &dyn WebDatabase,
    query: &ImpreciseQuery,
    model: &SimilarityModel,
    strategy: &mut dyn RelaxationStrategy,
    config: &EngineConfig,
) -> AnswerSet {
    let stats_before = db.stats();

    // Step 1: base query and base set.
    let (base_query, base_set) =
        derive_base_set(db, query, model, strategy, config.max_relax_level);

    // Extended set, deduplicated across overlapping relaxation queries.
    // Base-set tuples are answers (and relevant) by construction;
    // `examined` additionally remembers rejected candidates so a tuple
    // retrieved by several relaxation queries is looked at once.
    let mut examined: HashSet<Tuple> = HashSet::new();
    let mut extended: Vec<(Tuple, Provenance)> = Vec::new();
    for t in &base_set {
        if examined.insert(t.clone()) {
            extended.push((t.clone(), Provenance::BaseSet));
        }
    }

    // Steps 2-8: relax each base tuple, filter by Sim(t, t') > Tsim.
    'outer: for (base_index, t) in base_set.iter().take(config.max_base_tuples).enumerate() {
        let bound = t.bound_attrs();
        let tuple_query = tuple_query_for(model, t, &bound);
        let mut steps = strategy.steps(&bound, config.max_relax_level);
        steps.truncate(config.max_steps_per_tuple);
        for step in steps {
            let relaxed = tuple_query.relax(&step);
            if relaxed.is_empty() {
                continue;
            }
            for candidate in db.query(&relaxed) {
                if !examined.insert(candidate.clone()) {
                    continue;
                }
                let sim = model.tuple_similarity(t, &candidate, &bound);
                if sim > config.t_sim {
                    extended.push((
                        candidate,
                        Provenance::Relaxed {
                            base_index,
                            relaxed_attrs: step.clone(),
                        },
                    ));
                    if config
                        .target_relevant
                        .is_some_and(|target| extended.len() >= target)
                    {
                        break 'outer;
                    }
                }
            }
        }
    }

    // Step 9: rank the extended set by similarity to the query; top-k.
    let relevant_found = extended.len();
    let mut answers: Vec<RankedAnswer> = extended
        .into_iter()
        .map(|(tuple, provenance)| {
            let similarity = model.query_similarity(query, &tuple);
            RankedAnswer {
                tuple,
                similarity,
                provenance,
            }
        })
        .collect();
    answers.sort_by(|a, b| {
        b.similarity
            .total_cmp(&a.similarity)
            .then_with(|| a.tuple.values().cmp(b.tuple.values()))
    });
    answers.truncate(config.top_k);

    let stats_after = db.stats();
    AnswerSet {
        answers,
        stats: WorkStats {
            queries_issued: stats_after.queries_issued - stats_before.queries_issued,
            tuples_extracted: stats_after.tuples_returned - stats_before.tuples_returned,
            tuples_examined: examined.len(),
            relevant_found,
        },
        base_query,
        base_set_size: base_set.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_per_relevant_handles_zero() {
        let s = WorkStats::default();
        assert_eq!(s.work_per_relevant(), None);
        let s = WorkStats {
            queries_issued: 3,
            tuples_extracted: 55,
            tuples_examined: 40,
            relevant_found: 10,
        };
        assert_eq!(s.work_per_relevant(), Some(4.0));
    }

    #[test]
    fn default_config_is_sane() {
        let c = EngineConfig::default();
        assert!(c.t_sim > 0.0 && c.t_sim < 1.0);
        assert!(c.top_k >= 1);
        assert!(c.max_relax_level >= 1);
    }
}
