use std::collections::BTreeMap;
// aimq-lint: allow(hashmap) -- import for the insert-only `examined` set below
use std::collections::HashSet;
use std::fmt;

use aimq_catalog::{AttrId, ImpreciseQuery, Json, Schema, SelectionQuery, Tuple};
use aimq_sim::SimilarityModel;
use aimq_storage::{QueryError, QueryPage, SourceHealth, WebDatabase};
use serde::{Deserialize, Serialize};

use crate::base_query::derive_base_set_memoized;
use crate::bind::tuple_query_for;
use crate::relax::RelaxationStep;
use crate::RelaxationStrategy;

/// Tuning knobs of Algorithm 1. The paper leaves `Tsim` and `k` "tuned by
/// the system designers" (footnote 4); defaults follow the evaluation
/// section (Tsim sweeps 0.5–0.9, top-10 answers shown to users).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Similarity threshold `Tsim`: a relaxation result joins the extended
    /// set only if its similarity to its base tuple exceeds this.
    pub t_sim: f64,
    /// Number of ranked answers returned (`Top-k`).
    pub top_k: usize,
    /// Maximum number of attributes relaxed simultaneously.
    pub max_relax_level: usize,
    /// Cap on how many base-set tuples are expanded (each expansion issues
    /// a full relaxation-query sequence).
    pub max_base_tuples: usize,
    /// Optional early stop: end the whole search once this many relevant
    /// tuples **beyond the base set** are in the extended set. Figure
    /// 6/7's protocol stops at 20. Base-set tuples are relevant by
    /// construction and do not count toward the target — the knob asks
    /// for relaxation-found answers, so `target_relevant <= |base set|`
    /// still relaxes (an earlier revision counted the base set and
    /// silently short-circuited after at most one relaxed answer).
    pub target_relevant: Option<usize>,
    /// Cap on relaxation queries issued per base tuple. Wide schemas
    /// (CensusDB has 13 attributes) make the multi-attribute combination
    /// space explode; the cap keeps the greedy prefix — which contains
    /// the least-important relaxations — and drops the tail.
    pub max_steps_per_tuple: usize,
    /// Deduplicate the probe plan within one engine call: semantically
    /// identical relaxation queries (canonically equal
    /// [`SelectionQuery`]s) are issued once, and the page is fanned back
    /// out to every interested base tuple for the `Tsim` filter. Base-set
    /// tuples that agree on their non-relaxed attributes generate
    /// byte-identical probes, so redundancy is the common case. On by
    /// default; turn off to reproduce the non-deduplicating engine (the
    /// eval harness does, to measure the saving).
    pub dedup_probes: bool,
    /// Hand each base tuple's compiled probe plan to the source in one
    /// [`WebDatabase::try_query_plan`] call instead of query-at-a-time.
    /// Sources that support shared-plan evaluation (the in-memory
    /// posting-list executor) evaluate the plan's common subexpressions
    /// once; everything else inherits the sequential default, so the
    /// per-query traffic, fault schedule positions, memo behavior and
    /// answers are byte-identical either way. Automatically disabled
    /// while [`EngineConfig::target_relevant`] is set: the early stop
    /// can end a plan mid-tuple, and prefetching would issue probes a
    /// sequential engine never would.
    pub batch_plans: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            t_sim: 0.6,
            top_k: 10,
            max_relax_level: 2,
            max_base_tuples: 20,
            target_relevant: None,
            max_steps_per_tuple: 256,
            dedup_probes: true,
            batch_plans: true,
        }
    }
}

impl EngineConfig {
    /// Every knob as a deterministic [`Json`] object — the body served
    /// by `GET /config` (field order is declaration order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("t_sim", Json::Num(self.t_sim)),
            ("top_k", Json::Num(self.top_k as f64)),
            ("max_relax_level", Json::Num(self.max_relax_level as f64)),
            ("max_base_tuples", Json::Num(self.max_base_tuples as f64)),
            (
                "target_relevant",
                match self.target_relevant {
                    Some(n) => Json::Num(n as f64),
                    None => Json::Null,
                },
            ),
            (
                "max_steps_per_tuple",
                Json::Num(self.max_steps_per_tuple as f64),
            ),
            ("dedup_probes", Json::Bool(self.dedup_probes)),
            ("batch_plans", Json::Bool(self.batch_plans)),
        ])
    }

    /// Returns a copy with the knobs named in `patch` (a JSON object,
    /// e.g. `{"top_k": 5, "t_sim": 0.7}`) overridden — the semantics of
    /// `PATCH /config`. Unknown keys, wrong types, and out-of-range
    /// values are rejected wholesale: either every change applies or
    /// none does.
    pub fn with_json_patch(&self, patch: &Json) -> Result<EngineConfig, String> {
        let pairs = patch
            .as_object()
            .ok_or_else(|| "config patch must be a JSON object".to_string())?;
        let mut next = *self;
        for (key, value) in pairs {
            match key.as_str() {
                "t_sim" => {
                    let t = value
                        .as_f64()
                        .filter(|t| t.is_finite() && (0.0..=1.0).contains(t))
                        .ok_or_else(|| "`t_sim` must be a number in [0, 1]".to_string())?;
                    next.t_sim = t;
                }
                "top_k" => next.top_k = patch_usize(value, "top_k")?,
                "max_relax_level" => next.max_relax_level = patch_usize(value, "max_relax_level")?,
                "max_base_tuples" => next.max_base_tuples = patch_usize(value, "max_base_tuples")?,
                "target_relevant" => {
                    next.target_relevant = match value {
                        Json::Null => None,
                        v => Some(patch_usize(v, "target_relevant")?),
                    };
                }
                "max_steps_per_tuple" => {
                    next.max_steps_per_tuple = patch_usize(value, "max_steps_per_tuple")?;
                }
                "dedup_probes" => {
                    next.dedup_probes = value
                        .as_bool()
                        .ok_or_else(|| "`dedup_probes` must be a boolean".to_string())?;
                }
                "batch_plans" => {
                    next.batch_plans = value
                        .as_bool()
                        .ok_or_else(|| "`batch_plans` must be a boolean".to_string())?;
                }
                other => return Err(format!("unknown config knob `{other}`")),
            }
        }
        Ok(next)
    }
}

/// Shared `PATCH /config` helper: a non-negative integer knob.
fn patch_usize(value: &Json, key: &str) -> Result<usize, String> {
    value
        .as_u64()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

/// The paper's efficiency bookkeeping (Section 6.3):
/// `Work/RelevantTuple = |T_Extracted| / |T_Relevant|` — "a measure of
/// the average number of tuples that an user would have to look at before
/// finding a relevant tuple".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Boolean queries issued against the source while answering.
    pub queries_issued: u64,
    /// Total tuples the source returned, duplicates included (raw access
    /// meter).
    pub tuples_extracted: u64,
    /// Distinct tuples examined (the paper's `T_Extracted`: a user looks
    /// at each retrieved tuple once, however many relaxation queries
    /// return it).
    pub tuples_examined: usize,
    /// Distinct tuples whose similarity cleared `Tsim`, base set included
    /// (the paper's `T_Relevant`).
    pub relevant_found: usize,
}

impl WorkStats {
    /// `Work/RelevantTuple`; `None` when nothing relevant was found.
    pub fn work_per_relevant(&self) -> Option<f64> {
        (self.relevant_found > 0).then(|| self.tuples_examined as f64 / self.relevant_found as f64)
    }

    /// The access meter as a deterministic [`Json`] object (field order
    /// is declaration order).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("queries_issued", Json::Num(self.queries_issued as f64)),
            ("tuples_extracted", Json::Num(self.tuples_extracted as f64)),
            ("tuples_examined", Json::Num(self.tuples_examined as f64)),
            ("relevant_found", Json::Num(self.relevant_found as f64)),
        ])
    }
}

/// How much of the fault-free answer a degraded run can still vouch for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completeness {
    /// No probe failed, was skipped, or came back truncated: the answer
    /// is exactly what a fault-free run at the same seeds produces (it
    /// may still be legitimately empty).
    Full,
    /// Some probes failed, were abandoned, or returned clipped pages.
    /// Every returned answer is genuine and correctly ranked among the
    /// answers found, but relevant tuples reachable only through the
    /// failed probes may be missing.
    Partial,
    /// Faults occurred *and* the answer set is empty — the engine cannot
    /// distinguish "nothing matches" from "everything relevant hid
    /// behind the failed probes".
    Empty,
}

impl fmt::Display for Completeness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completeness::Full => write!(f, "full"),
            Completeness::Partial => write!(f, "partial"),
            Completeness::Empty => write!(f, "empty"),
        }
    }
}

/// The honest completeness report attached to every [`AnswerSet`]: what
/// Algorithm 1 attempted against the source, what failed, what was
/// abandoned, and the resulting [`Completeness`] verdict.
///
/// Counters are engine-level (post-resilience): a probe that a
/// [`aimq_storage::ResilientWebDb`] retried into success counts as one
/// successful attempt here, with the raw churn visible in
/// [`DegradationReport::retries`] (taken from the source's access-meter
/// delta).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Probe queries the engine issued (base derivation + relaxation).
    /// Planned probes answered by the in-call dedup memo are *not*
    /// counted here — they never reached the source; see
    /// [`DegradationReport::probes_deduped`].
    pub probes_attempted: u64,
    /// Planned probes that canonically equaled an earlier probe of this
    /// call and were answered by replaying its page instead of
    /// re-querying the source ([`EngineConfig::dedup_probes`]).
    pub probes_deduped: u64,
    /// Probes that came back with a [`QueryError`] after any retries.
    pub probes_failed: u64,
    /// Planned relaxation probes abandoned un-issued after the source
    /// became unavailable.
    pub probes_skipped: u64,
    /// Relaxation levels cut short, summed over abandoned base tuples (a
    /// level is counted when at least one of its steps was skipped).
    pub levels_abandoned: u64,
    /// Result pages the source clipped to its page limit.
    pub truncated_pages: u64,
    /// Source-level retries spent on this query (access-meter delta).
    pub retries: u64,
    /// Circuit-breaker trips during this query (access-meter delta).
    pub breaker_trips: u64,
    /// The source became [`QueryError::Unavailable`] mid-query; all work
    /// after that point was abandoned.
    pub source_lost: bool,
    /// Per-source completeness breakdown, populated when the source is a
    /// federation (`aimq_storage::FederatedWebDb`): scatter outcomes,
    /// contributed tuples, hedges and breaker state per member, scoped to
    /// this call via [`aimq_storage::SourceHealth::since`]. Empty for
    /// single-source databases.
    pub sources: Vec<SourceHealth>,
    /// The overall verdict.
    pub completeness: Completeness,
}

impl Default for Completeness {
    fn default() -> Self {
        Completeness::Full
    }
}

impl DegradationReport {
    /// `true` when any fault affected this answer.
    pub fn is_degraded(&self) -> bool {
        self.completeness != Completeness::Full
    }

    /// Record one engine-visible probe outcome (shared by the base-query
    /// derivation and the relaxation loop).
    pub(crate) fn note_attempt(&mut self) {
        self.probes_attempted += 1;
    }

    /// Record a failed probe; flags `source_lost` on terminal errors.
    pub(crate) fn note_failure(&mut self, error: QueryError) {
        self.probes_failed += 1;
        if !error.is_retryable() {
            self.source_lost = true;
        }
    }

    /// Record a clipped result page.
    pub(crate) fn note_truncated(&mut self) {
        self.truncated_pages += 1;
    }

    /// The report as a deterministic [`Json`] object (field order is
    /// declaration order; `sources` embeds each member's
    /// [`SourceHealth::to_json`], `completeness` its `Display` form) —
    /// shared by the HTTP search/stats routes and `serve-bench`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("probes_attempted", Json::Num(self.probes_attempted as f64)),
            ("probes_deduped", Json::Num(self.probes_deduped as f64)),
            ("probes_failed", Json::Num(self.probes_failed as f64)),
            ("probes_skipped", Json::Num(self.probes_skipped as f64)),
            ("levels_abandoned", Json::Num(self.levels_abandoned as f64)),
            ("truncated_pages", Json::Num(self.truncated_pages as f64)),
            ("retries", Json::Num(self.retries as f64)),
            ("breaker_trips", Json::Num(self.breaker_trips as f64)),
            ("source_lost", Json::Bool(self.source_lost)),
            (
                "sources",
                Json::Arr(self.sources.iter().map(SourceHealth::to_json).collect()),
            ),
            ("completeness", Json::Str(self.completeness.to_string())),
        ])
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "completeness={} probes={} deduped={} failed={} skipped={} levels-abandoned={} \
             truncated={} retries={} breaker-trips={}{}",
            self.completeness,
            self.probes_attempted,
            self.probes_deduped,
            self.probes_failed,
            self.probes_skipped,
            self.levels_abandoned,
            self.truncated_pages,
            self.retries,
            self.breaker_trips,
            if self.source_lost { " source-lost" } else { "" }
        )?;
        for source in &self.sources {
            write!(f, " [{source}]")?;
        }
        Ok(())
    }
}

/// How an answer entered the extended set — the explainability hook:
/// "this Accord is here because the engine relaxed Make and Model of a
/// base-set Camry".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// The tuple satisfied the (possibly generalized) base query itself.
    BaseSet,
    /// The tuple came from outside the engine (e.g. a caller-supplied
    /// pool re-ranked by the feedback tuner).
    External,
    /// The tuple was retrieved by relaxing `relaxed_attrs` of the
    /// base-set tuple at index `base_index` (into the base set).
    Relaxed {
        /// Index of the originating tuple in the base set.
        base_index: usize,
        /// Attributes whose constraints were dropped.
        relaxed_attrs: Vec<AttrId>,
    },
}

impl Provenance {
    /// The provenance as a tagged [`Json`] object: `{"kind":"base_set"}`,
    /// `{"kind":"external"}`, or `{"kind":"relaxed","base_index":i,
    /// "relaxed_attrs":[names...]}` with attribute names resolved
    /// against `schema`.
    #[must_use]
    pub fn to_json(&self, schema: &Schema) -> Json {
        match self {
            // aimq-wire: optional -- the tag is per-arm; exactly one `kind` is always present
            Provenance::BaseSet => Json::obj(vec![("kind", Json::Str("base_set".into()))]),
            // aimq-wire: optional -- the tag is per-arm; exactly one `kind` is always present
            Provenance::External => Json::obj(vec![("kind", Json::Str("external".into()))]),
            Provenance::Relaxed {
                base_index,
                relaxed_attrs,
            } => Json::obj(vec![
                // aimq-wire: optional -- the tag is per-arm; exactly one `kind` is always present
                ("kind", Json::Str("relaxed".into())),
                // aimq-wire: optional -- only `kind:"relaxed"` carries the origin index
                ("base_index", Json::Num(*base_index as f64)),
                (
                    // aimq-wire: optional -- only `kind:"relaxed"` names the dropped attributes
                    "relaxed_attrs",
                    Json::Arr(
                        relaxed_attrs
                            .iter()
                            .map(|&a| Json::Str(schema.attr_name(a).to_string()))
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

/// One ranked answer.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAnswer {
    /// The answer tuple.
    pub tuple: Tuple,
    /// Its similarity to the *query* (the final ranking key).
    pub similarity: f64,
    /// How the engine found this tuple.
    pub provenance: Provenance,
}

impl RankedAnswer {
    /// The answer as a deterministic [`Json`] object: the tuple keyed by
    /// attribute name, the shortest-roundtrip similarity, and the
    /// provenance tag.
    #[must_use]
    pub fn to_json(&self, schema: &Schema) -> Json {
        Json::obj(vec![
            ("tuple", self.tuple.to_json(schema)),
            ("similarity", Json::Num(self.similarity)),
            ("provenance", self.provenance.to_json(schema)),
        ])
    }
}

/// The result of answering one imprecise query.
#[derive(Debug, Clone)]
pub struct AnswerSet {
    /// Top-k answers, descending similarity.
    pub answers: Vec<RankedAnswer>,
    /// Access-metering statistics for this query.
    pub stats: WorkStats,
    /// The (possibly generalized) precise query whose answers formed the
    /// base set.
    pub base_query: SelectionQuery,
    /// Size of the base set `|Abs|`.
    pub base_set_size: usize,
    /// What failed, what was skipped, and how complete the answer is.
    pub degradation: DegradationReport,
}

impl AnswerSet {
    /// The whole result as one deterministic [`Json`] object — the body
    /// of a `POST /indexes/:name/search` response. Byte-for-byte
    /// reproducible: answers keep their ranked order, objects their
    /// declaration order, and every number renders through the canonical
    /// path, so the HTTP wire form of a result equals the in-process
    /// serialization of the same [`AnswerSet`].
    #[must_use]
    pub fn to_json(&self, schema: &Schema) -> Json {
        Json::obj(vec![
            (
                "answers",
                Json::Arr(self.answers.iter().map(|a| a.to_json(schema)).collect()),
            ),
            ("stats", self.stats.to_json()),
            (
                "base_query",
                Json::Str(self.base_query.display_with(schema).to_string()),
            ),
            ("base_set_size", Json::Num(self.base_set_size as f64)),
            ("degradation", self.degradation.to_json()),
        ])
    }
}

/// Distinct *strategy-assigned* relaxation levels among the plan steps.
/// Levels come from [`RelaxationStep::level`], not from step sizes — two
/// same-size steps at different levels are two levels.
fn distinct_levels(steps: &[RelaxationStep]) -> u64 {
    let mut levels: Vec<usize> = steps.iter().map(|s| s.level).collect();
    levels.sort_unstable();
    levels.dedup();
    levels.len() as u64
}

/// Per-call probe memo backing the planner's dedup: every successful page
/// of this engine call, keyed on the canonical query form. A planned
/// probe whose canonical query already succeeded replays the recorded
/// page instead of re-querying the source; failed probes are never
/// memoized (the next identical probe retries the source).
///
/// The memo spans the *whole* call — base-set derivation included — so a
/// relaxation that reproduces the base query (common when a base tuple's
/// bands equal the query's) is also free. It lives and dies with one
/// `answer_imprecise_query` call; cross-call memoization is the job of
/// [`aimq_storage::CachedWebDb`] at the source boundary.
pub(crate) struct ProbeMemo {
    enabled: bool,
    pages: BTreeMap<SelectionQuery, QueryPage>,
}

impl ProbeMemo {
    pub(crate) fn new(enabled: bool) -> Self {
        ProbeMemo {
            enabled,
            pages: BTreeMap::new(),
        }
    }

    /// A memo that never replays nor records (reproduces the
    /// non-deduplicating engine).
    pub(crate) fn disabled() -> Self {
        Self::new(false)
    }

    /// The recorded page for the canonical `key`, if dedup is on and an
    /// identical probe already succeeded this call.
    pub(crate) fn replay(&self, key: &SelectionQuery) -> Option<QueryPage> {
        if !self.enabled {
            return None;
        }
        self.pages.get(key).cloned()
    }

    /// Record a successful page under the canonical `key`. First success
    /// wins; later identical probes replay it.
    pub(crate) fn record(&mut self, key: SelectionQuery, page: &QueryPage) {
        if self.enabled {
            self.pages.entry(key).or_insert_with(|| page.clone());
        }
    }
}

/// Algorithm 1 ("Finding Relevant Answers") of the paper, hardened for
/// fallible sources.
///
/// `model` supplies both `Sim` functions (tuple–tuple for the `Tsim`
/// filter, query–tuple for the final ranking); `strategy` decides the
/// relaxation order (Guided vs Random).
///
/// The engine never panics on and never hides a source failure: a failed
/// relaxation probe is recorded in the [`DegradationReport`] and skipped;
/// a terminal [`QueryError::Unavailable`] abandons the remaining probe
/// plan (recording how much was abandoned) and returns whatever was
/// already found, with [`Completeness::Partial`] or
/// [`Completeness::Empty`] telling the caller how much the answer can be
/// trusted.
// aimq-probe: entry -- the engine's probe loop; probe budget and failures are accounted in DegradationReport
pub fn answer_imprecise_query(
    db: &dyn WebDatabase,
    query: &ImpreciseQuery,
    model: &SimilarityModel,
    strategy: &mut dyn RelaxationStrategy,
    config: &EngineConfig,
) -> AnswerSet {
    let stats_before = db.stats();
    let sources_before = db.source_health();
    let mut degradation = DegradationReport::default();
    let mut memo = ProbeMemo::new(config.dedup_probes);

    // Step 1: base query and base set. Derivation pages are recorded in
    // the memo, so a later relaxation probe that reproduces one of them
    // is replayed instead of re-issued.
    let (base_query, base_set) = derive_base_set_memoized(
        db,
        query,
        model,
        strategy,
        config.max_relax_level,
        &mut degradation,
        &mut memo,
    );

    // Extended set, deduplicated across overlapping relaxation queries.
    // Base-set tuples are answers (and relevant) by construction;
    // `examined` additionally remembers rejected candidates so a tuple
    // retrieved by several relaxation queries is looked at once. The set
    // is insert-only and only its `len()` is read — its randomized
    // iteration order is never observed, so it cannot leak into results.
    // aimq-lint: allow(hashmap) -- insert-only membership set, never iterated
    let mut examined: HashSet<Tuple> = HashSet::new();
    let mut extended: Vec<(Tuple, Provenance)> = Vec::new();
    for t in &base_set {
        if examined.insert(t.clone()) {
            extended.push((t.clone(), Provenance::BaseSet));
        }
    }

    // Base-set tuples are relevant by construction; the early-stop target
    // counts only what relaxation finds *beyond* them.
    let base_count = extended.len();

    // Steps 2-8: relax each base tuple, filter by Sim(t, t') > Tsim. The
    // planner dedups canonically identical probes against the per-call
    // memo (identical relaxed queries are issued once, their page fanned
    // back out to every interested base tuple at its original plan
    // position). A failed probe is recorded and skipped; a terminal
    // failure abandons the remaining plan (accounted below).
    let expanded_tuples = base_set.iter().take(config.max_base_tuples);
    let mut abandoned_at: Option<usize> = None;
    // Whole-plan prefetch is an optimization, never a semantics change:
    // it must issue the exact query sequence the sequential loop would
    // (deterministic fault schedules key on query *position*). Under the
    // early-stop target the sequential loop may end a plan mid-tuple, so
    // batching stands down there.
    let batch = config.batch_plans && config.target_relevant.is_none();
    'outer: for (base_index, t) in expanded_tuples.enumerate() {
        if degradation.source_lost {
            abandoned_at = Some(base_index);
            break;
        }
        let bound = t.bound_attrs();
        let tuple_query = tuple_query_for(model, t, &bound);
        let mut plan = strategy.plan(&bound, config.max_relax_level);
        plan.truncate(config.max_steps_per_tuple);
        // Each probe stores the canonical form of its relaxed query: the
        // memo keys on it AND the probe itself is issued in canonical
        // form, so a downstream `CachedWebDb` derives its cache key by
        // borrowing instead of re-sorting (see
        // `SelectionQuery::is_canonical`). Canonicalization is
        // semantics-preserving, so the source sees an equivalent query.
        let probes = crate::relax::compile_probes(&tuple_query, &plan);

        // Batched path: issue this tuple's pending probes — the first
        // occurrence of every non-empty query the memo can't replay, in
        // step order, which for the built-in strategies (pairwise-distinct
        // step keys) is exactly the sequence the sequential loop issues —
        // through one `try_query_plan` call. Results are consumed by key
        // below; a key with no prefetched result (duplicate step keys
        // from a custom strategy, or a plan cut short by a terminal
        // error) falls back to an individual probe.
        let mut prefetched: BTreeMap<SelectionQuery, Result<QueryPage, QueryError>> =
            BTreeMap::new();
        if batch {
            let mut pending: Vec<SelectionQuery> = Vec::new();
            for probe in &probes {
                if probe.query.predicates().is_empty()
                    || memo.replay(&probe.query).is_some()
                    || pending.contains(&probe.query)
                {
                    continue;
                }
                pending.push(probe.query.clone());
            }
            if !pending.is_empty() {
                let results = db.try_query_plan(&pending);
                // `results` may be a prefix (terminal error): consumption
                // hits the terminal entry first and abandons, so the
                // unpaired tail is never reached.
                prefetched = pending.into_iter().zip(results).collect();
            }
        }

        for (step_index, probe) in probes.iter().enumerate() {
            let step = &probe.step;
            let key = &probe.query;
            if key.predicates().is_empty() {
                continue;
            }
            let page = if let Some(page) = memo.replay(key) {
                degradation.probes_deduped += 1;
                page
            } else {
                degradation.note_attempt();
                let outcome = match prefetched.remove(key) {
                    Some(result) => result,
                    None => db.try_query(key),
                };
                match outcome {
                    Ok(page) => {
                        if page.truncated {
                            degradation.note_truncated();
                        }
                        memo.record(key.clone(), &page);
                        page
                    }
                    Err(error) => {
                        degradation.note_failure(error);
                        if degradation.source_lost {
                            // Account the rest of this tuple's plan, then
                            // fall to the outer abandonment bookkeeping.
                            let remaining = &plan[step_index + 1..]; // aimq-lint: allow(indexing) -- step_index < plan.len(): probes and plan are 1:1 by compile_probes
                            degradation.probes_skipped += remaining.len() as u64;
                            degradation.levels_abandoned += distinct_levels(remaining);
                            abandoned_at = Some(base_index + 1);
                            break 'outer;
                        }
                        continue;
                    }
                }
            };
            for candidate in page.tuples {
                if !examined.insert(candidate.clone()) {
                    continue;
                }
                let sim = model.tuple_similarity(t, &candidate, &bound);
                if sim > config.t_sim {
                    extended.push((
                        candidate,
                        Provenance::Relaxed {
                            base_index,
                            relaxed_attrs: step.attrs.clone(),
                        },
                    ));
                    if config
                        .target_relevant
                        .is_some_and(|target| extended.len() - base_count >= target)
                    {
                        break 'outer;
                    }
                }
            }
        }
    }

    // Terminal abandonment: account the base tuples never expanded, so
    // the report says how much of the plan was dropped.
    if let Some(from) = abandoned_at {
        for t in base_set.iter().take(config.max_base_tuples).skip(from) {
            let bound = t.bound_attrs();
            let mut plan = strategy.plan(&bound, config.max_relax_level);
            plan.truncate(config.max_steps_per_tuple);
            degradation.probes_skipped += plan.len() as u64;
            degradation.levels_abandoned += distinct_levels(&plan);
        }
    }

    // Step 9: rank the extended set by similarity to the query; top-k.
    let relevant_found = extended.len();
    let mut answers: Vec<RankedAnswer> = extended
        .into_iter()
        .map(|(tuple, provenance)| {
            let similarity = model.query_similarity(query, &tuple);
            RankedAnswer {
                tuple,
                similarity,
                provenance,
            }
        })
        .collect();
    answers.sort_by(|a, b| {
        b.similarity
            .total_cmp(&a.similarity)
            .then_with(|| a.tuple.values().cmp(b.tuple.values()))
    });
    answers.truncate(config.top_k);

    let stats_after = db.stats();
    let delta = stats_after.since(&stats_before);
    degradation.retries = delta.retries;
    degradation.breaker_trips = delta.breaker_trips;
    // Per-source breakdown: scope each member's counters to this call by
    // differencing the federation's health table around it. Members are
    // matched positionally — the federation's member order is stable.
    if let (Some(before), Some(after)) = (sources_before, db.source_health()) {
        degradation.sources = after
            .iter()
            .zip(before.iter())
            .map(|(a, b)| a.since(b))
            .collect();
    }
    let faulted = degradation.probes_failed > 0
        || degradation.probes_skipped > 0
        || degradation.truncated_pages > 0
        || degradation.source_lost;
    degradation.completeness = match (faulted, answers.is_empty()) {
        (false, _) => Completeness::Full,
        (true, false) => Completeness::Partial,
        (true, true) => Completeness::Empty,
    };

    AnswerSet {
        answers,
        stats: WorkStats {
            queries_issued: delta.queries_issued,
            tuples_extracted: delta.tuples_returned,
            tuples_examined: examined.len(),
            relevant_found,
        },
        base_query,
        base_set_size: base_set.len(),
        degradation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_per_relevant_handles_zero() {
        let s = WorkStats::default();
        assert_eq!(s.work_per_relevant(), None);
        let s = WorkStats {
            queries_issued: 3,
            tuples_extracted: 55,
            tuples_examined: 40,
            relevant_found: 10,
        };
        assert_eq!(s.work_per_relevant(), Some(4.0));
    }

    #[test]
    fn default_config_is_sane() {
        let c = EngineConfig::default();
        assert!(c.t_sim > 0.0 && c.t_sim < 1.0);
        assert!(c.top_k >= 1);
        assert!(c.max_relax_level >= 1);
    }

    #[test]
    fn default_report_is_full_and_clean() {
        let r = DegradationReport::default();
        assert_eq!(r.completeness, Completeness::Full);
        assert!(!r.is_degraded());
        assert!(r.to_string().starts_with("completeness=full"));
    }

    #[test]
    fn report_display_is_one_line() {
        let r = DegradationReport {
            probes_attempted: 12,
            probes_deduped: 7,
            probes_failed: 2,
            probes_skipped: 3,
            levels_abandoned: 1,
            truncated_pages: 4,
            retries: 5,
            breaker_trips: 1,
            source_lost: true,
            sources: vec![
                SourceHealth {
                    name: "s0".into(),
                    probes_attempted: 6,
                    probes_failed: 0,
                    tuples_contributed: 40,
                    hedges_fired: 0,
                    hedges_won: 0,
                    breaker_open: false,
                },
                SourceHealth {
                    name: "s1".into(),
                    probes_attempted: 6,
                    probes_failed: 2,
                    tuples_contributed: 0,
                    hedges_fired: 2,
                    hedges_won: 1,
                    breaker_open: true,
                },
            ],
            completeness: Completeness::Partial,
        };
        let line = r.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("completeness=partial"));
        assert!(line.contains("deduped=7"));
        assert!(line.contains("source-lost"));
        assert!(line.contains("[s1: probes=6 failed=2 contributed=0 hedges=1/2 breaker-open]"));
        assert!(r.is_degraded());
    }

    #[test]
    fn distinct_levels_follows_strategy_levels_not_sizes() {
        let steps = vec![
            RelaxationStep::of(vec![AttrId(0)]),
            RelaxationStep::of(vec![AttrId(1)]),
            RelaxationStep::of(vec![AttrId(0), AttrId(1)]),
        ];
        assert_eq!(distinct_levels(&steps), 2);
        // Two same-size steps at different strategy-assigned levels are
        // two levels (the old size-based accounting said one).
        let escalated = vec![
            RelaxationStep {
                attrs: vec![AttrId(0)],
                level: 1,
            },
            RelaxationStep {
                attrs: vec![AttrId(1)],
                level: 2,
            },
        ];
        assert_eq!(distinct_levels(&escalated), 2);
        assert_eq!(distinct_levels(&[]), 0);
    }

    #[test]
    fn probe_memo_replays_only_when_enabled() {
        let q = SelectionQuery::all();
        let page = QueryPage::complete(Vec::new());
        let mut off = ProbeMemo::disabled();
        off.record(q.clone(), &page);
        assert!(off.replay(&q).is_none());
        let mut on = ProbeMemo::new(true);
        assert!(on.replay(&q).is_none());
        on.record(q.clone(), &page);
        assert_eq!(on.replay(&q), Some(page));
    }
}

#[cfg(test)]
mod behavior_tests {
    use super::*;
    use crate::relax::RelaxationStrategy;
    use crate::GuidedRelax;
    use aimq_afd::{AttributeOrdering, BucketConfig};
    use aimq_catalog::{Schema, Value};
    use aimq_sim::SimConfig;
    use aimq_storage::{AccessStats, InMemoryWebDb, Relation};
    use std::sync::Mutex;

    fn schema() -> Schema {
        Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .categorical("C")
            .build()
            .unwrap()
    }

    /// A relation whose base set contains byte-identical tuples — the
    /// redundancy case the planner dedups: identical tuples generate
    /// identical relaxation-query sequences.
    fn world() -> (InMemoryWebDb, SimilarityModel, ImpreciseQuery) {
        let s = schema();
        let rows = [
            ("x", "y", "z"),
            ("x", "y", "z"),
            ("x", "q", "z"),
            ("p", "y", "z"),
            ("x", "y", "r"),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(a, b, c)| {
                Tuple::new(&s, vec![Value::cat(a), Value::cat(b), Value::cat(c)]).unwrap()
            })
            .collect();
        let relation = Relation::from_tuples(s.clone(), &tuples).unwrap();
        let ordering = AttributeOrdering::uniform(&s).unwrap();
        let model = SimilarityModel::build(
            &relation,
            &ordering,
            &SimConfig {
                bucket: BucketConfig::for_schema(&s),
            },
        );
        let q = ImpreciseQuery::builder(&s)
            .like("A", Value::cat("x"))
            .unwrap()
            .like("B", Value::cat("y"))
            .unwrap()
            .like("C", Value::cat("z"))
            .unwrap()
            .build()
            .unwrap();
        (InMemoryWebDb::new(relation), model, q)
    }

    fn strategy(model: &SimilarityModel) -> GuidedRelax {
        GuidedRelax::new(model.ordering().clone())
    }

    fn answer_fingerprint(result: &AnswerSet) -> String {
        let answers: Vec<String> = result
            .answers
            .iter()
            .map(|a| {
                format!(
                    "{:?}@{:016x}/{:?}",
                    a.tuple,
                    a.similarity.to_bits(),
                    a.provenance
                )
            })
            .collect();
        answers.join(";")
    }

    /// Tentpole: identical probe sequences from identical base tuples are
    /// issued once, the saving is metered, and the answers (tuples,
    /// similarities, provenance) are byte-identical to the
    /// non-deduplicating engine.
    #[test]
    fn planner_dedup_preserves_answers_and_cuts_queries() {
        let config = EngineConfig {
            t_sim: 0.05,
            top_k: 10,
            ..EngineConfig::default()
        };
        let (db, model, q) = world();
        let mut s = strategy(&model);
        let deduped = answer_imprecise_query(&db, &q, &model, &mut s, &config);
        let deduped_issued = db.stats().queries_issued;

        let (db, model, q) = world();
        let mut s = strategy(&model);
        let baseline_config = EngineConfig {
            dedup_probes: false,
            ..config
        };
        let baseline = answer_imprecise_query(&db, &q, &model, &mut s, &baseline_config);
        let baseline_issued = db.stats().queries_issued;

        assert_eq!(deduped.base_set_size, 2, "two identical base tuples");
        assert!(
            deduped.degradation.probes_deduped > 0,
            "identical plans must dedup"
        );
        assert_eq!(baseline.degradation.probes_deduped, 0);
        assert!(
            deduped_issued < baseline_issued,
            "dedup must reduce source traffic ({deduped_issued} vs {baseline_issued})"
        );
        // Every planned probe is accounted exactly once: issued or deduped.
        assert_eq!(
            deduped.degradation.probes_attempted + deduped.degradation.probes_deduped,
            baseline.degradation.probes_attempted,
        );
        assert_eq!(answer_fingerprint(&deduped), answer_fingerprint(&baseline));
        assert_eq!(
            deduped.stats.tuples_examined,
            baseline.stats.tuples_examined
        );
        assert_eq!(deduped.stats.relevant_found, baseline.stats.relevant_found);
    }

    /// Satellite regression: `target_relevant` counts relevant tuples
    /// *beyond* the base set. With `target <= |base set|` the engine must
    /// still relax until that many relaxed answers are found, not stop at
    /// the first one.
    #[test]
    fn target_relevant_counts_beyond_the_base_set() {
        let (db, model, q) = world();
        let mut s = strategy(&model);
        let config = EngineConfig {
            t_sim: 0.05,
            top_k: 10,
            target_relevant: Some(2), // == |base set|: the old bug's blind spot
            ..EngineConfig::default()
        };
        let result = answer_imprecise_query(&db, &q, &model, &mut s, &config);
        assert_eq!(result.base_set_size, 2);
        let relaxed_answers = result
            .answers
            .iter()
            .filter(|a| matches!(a.provenance, Provenance::Relaxed { .. }))
            .count();
        assert_eq!(
            relaxed_answers, 2,
            "the early stop fires at exactly `target` relaxed answers"
        );
        // The two identical base tuples collapse to one distinct relevant
        // entry; the old `extended.len() >= target` check would have
        // stopped after a single relaxed answer here.
        assert_eq!(result.stats.relevant_found, 1 + 2);
    }

    /// Tentpole: handing whole plans to the source
    /// (`EngineConfig::batch_plans` → `try_query_plan`) is a pure
    /// executor swap — answers, degradation counters and source-visible
    /// traffic are byte-identical to the query-at-a-time engine, for
    /// both dedup settings, on a clean source and through a seeded
    /// fault-injecting decorator (whose `Sequenced` schedule keys fate
    /// on query *position*, so any reordering would diverge).
    #[test]
    fn batched_plans_match_sequential_engine() {
        use aimq_storage::{FaultInjectingWebDb, FaultProfile};

        let run = |batch: bool, dedup: bool, faults: bool| {
            let (db, model, q) = world();
            let mut s = strategy(&model);
            let config = EngineConfig {
                t_sim: 0.05,
                top_k: 10,
                dedup_probes: dedup,
                batch_plans: batch,
                ..EngineConfig::default()
            };
            let result = if faults {
                let db = FaultInjectingWebDb::new(db.clone(), FaultProfile::flaky(), 7);
                answer_imprecise_query(&db, &q, &model, &mut s, &config)
            } else {
                answer_imprecise_query(&db, &q, &model, &mut s, &config)
            };
            (answer_fingerprint(&result), result.degradation, db.stats())
        };

        for dedup in [true, false] {
            for faults in [false, true] {
                let (fp_seq, deg_seq, stats_seq) = run(false, dedup, faults);
                let (fp_bat, deg_bat, stats_bat) = run(true, dedup, faults);
                assert_eq!(fp_bat, fp_seq, "answers (dedup={dedup} faults={faults})");
                assert_eq!(
                    deg_bat, deg_seq,
                    "degradation (dedup={dedup} faults={faults})"
                );
                assert_eq!(
                    stats_bat, stats_seq,
                    "source meter (dedup={dedup} faults={faults})"
                );
            }
        }
    }

    /// A source that dies for good after a fixed number of successes.
    struct DyingDb {
        inner: InMemoryWebDb,
        successes_left: Mutex<u32>,
    }

    impl WebDatabase for DyingDb {
        fn schema(&self) -> &Schema {
            self.inner.schema()
        }
        fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
            let mut left = self.successes_left.lock().unwrap();
            if *left == 0 {
                return Err(QueryError::Unavailable);
            }
            *left -= 1;
            self.inner.try_query(query)
        }
        fn stats(&self) -> AccessStats {
            self.inner.stats()
        }
        fn reset_stats(&self) {
            self.inner.reset_stats()
        }
    }

    /// Satellite regression: `levels_abandoned` follows the strategy's
    /// level structure. An escalation strategy emits same-*size* steps at
    /// different levels; abandoning two of them must count two levels
    /// (the old size-based accounting counted one).
    #[test]
    fn abandonment_counts_strategy_levels_not_step_sizes() {
        struct Escalating;
        impl RelaxationStrategy for Escalating {
            fn steps(&mut self, attrs: &[AttrId], _max_level: usize) -> Vec<Vec<AttrId>> {
                attrs.iter().map(|&a| vec![a]).collect()
            }
            fn plan(&mut self, attrs: &[AttrId], max_level: usize) -> Vec<RelaxationStep> {
                self.steps(attrs, max_level)
                    .into_iter()
                    .enumerate()
                    .map(|(pass, attrs)| RelaxationStep {
                        attrs,
                        level: pass + 1,
                    })
                    .collect()
            }
            fn name(&self) -> &'static str {
                "Escalating"
            }
        }

        let s = schema();
        let t = Tuple::new(&s, vec![Value::cat("x"), Value::cat("y"), Value::cat("z")]).unwrap();
        let relation = Relation::from_tuples(s.clone(), &[t]).unwrap();
        let ordering = AttributeOrdering::uniform(&s).unwrap();
        let model = SimilarityModel::build(
            &relation,
            &ordering,
            &SimConfig {
                bucket: BucketConfig::for_schema(&s),
            },
        );
        let q = ImpreciseQuery::builder(&s)
            .like("A", Value::cat("x"))
            .unwrap()
            .like("B", Value::cat("y"))
            .unwrap()
            .like("C", Value::cat("z"))
            .unwrap()
            .build()
            .unwrap();
        // One success (the base query), then the source is gone: the
        // first relaxation probe fails terminally, abandoning the two
        // remaining steps of the 3-step escalation plan.
        let db = DyingDb {
            inner: InMemoryWebDb::new(relation),
            successes_left: Mutex::new(1),
        };
        let mut strategy = Escalating;
        let result = answer_imprecise_query(
            &db,
            &q,
            &model,
            &mut strategy,
            &EngineConfig {
                t_sim: 0.05,
                ..EngineConfig::default()
            },
        );
        let d = &result.degradation;
        assert!(d.source_lost);
        assert_eq!(d.probes_skipped, 2, "two planned steps never issued");
        assert_eq!(
            d.levels_abandoned, 2,
            "same-size steps at levels 2 and 3 are two abandoned levels"
        );
        assert_eq!(result.base_set_size, 1);
        assert_eq!(d.completeness, Completeness::Partial);
    }
}
