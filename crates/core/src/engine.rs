use std::collections::HashSet;
use std::fmt;

use aimq_catalog::{AttrId, ImpreciseQuery, SelectionQuery, Tuple};
use aimq_sim::SimilarityModel;
use aimq_storage::{QueryError, WebDatabase};

use crate::base_query::derive_base_set;
use crate::bind::tuple_query_for;
use crate::RelaxationStrategy;

/// Tuning knobs of Algorithm 1. The paper leaves `Tsim` and `k` "tuned by
/// the system designers" (footnote 4); defaults follow the evaluation
/// section (Tsim sweeps 0.5–0.9, top-10 answers shown to users).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Similarity threshold `Tsim`: a relaxation result joins the extended
    /// set only if its similarity to its base tuple exceeds this.
    pub t_sim: f64,
    /// Number of ranked answers returned (`Top-k`).
    pub top_k: usize,
    /// Maximum number of attributes relaxed simultaneously.
    pub max_relax_level: usize,
    /// Cap on how many base-set tuples are expanded (each expansion issues
    /// a full relaxation-query sequence).
    pub max_base_tuples: usize,
    /// Optional early stop: end the whole search once this many relevant
    /// tuples (beyond the base set) are in the extended set. Figure 6/7's
    /// protocol stops at 20.
    pub target_relevant: Option<usize>,
    /// Cap on relaxation queries issued per base tuple. Wide schemas
    /// (CensusDB has 13 attributes) make the multi-attribute combination
    /// space explode; the cap keeps the greedy prefix — which contains
    /// the least-important relaxations — and drops the tail.
    pub max_steps_per_tuple: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            t_sim: 0.6,
            top_k: 10,
            max_relax_level: 2,
            max_base_tuples: 20,
            target_relevant: None,
            max_steps_per_tuple: 256,
        }
    }
}

/// The paper's efficiency bookkeeping (Section 6.3):
/// `Work/RelevantTuple = |T_Extracted| / |T_Relevant|` — "a measure of
/// the average number of tuples that an user would have to look at before
/// finding a relevant tuple".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Boolean queries issued against the source while answering.
    pub queries_issued: u64,
    /// Total tuples the source returned, duplicates included (raw access
    /// meter).
    pub tuples_extracted: u64,
    /// Distinct tuples examined (the paper's `T_Extracted`: a user looks
    /// at each retrieved tuple once, however many relaxation queries
    /// return it).
    pub tuples_examined: usize,
    /// Distinct tuples whose similarity cleared `Tsim`, base set included
    /// (the paper's `T_Relevant`).
    pub relevant_found: usize,
}

impl WorkStats {
    /// `Work/RelevantTuple`; `None` when nothing relevant was found.
    pub fn work_per_relevant(&self) -> Option<f64> {
        (self.relevant_found > 0).then(|| self.tuples_examined as f64 / self.relevant_found as f64)
    }
}

/// How much of the fault-free answer a degraded run can still vouch for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completeness {
    /// No probe failed, was skipped, or came back truncated: the answer
    /// is exactly what a fault-free run at the same seeds produces (it
    /// may still be legitimately empty).
    Full,
    /// Some probes failed, were abandoned, or returned clipped pages.
    /// Every returned answer is genuine and correctly ranked among the
    /// answers found, but relevant tuples reachable only through the
    /// failed probes may be missing.
    Partial,
    /// Faults occurred *and* the answer set is empty — the engine cannot
    /// distinguish "nothing matches" from "everything relevant hid
    /// behind the failed probes".
    Empty,
}

impl fmt::Display for Completeness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Completeness::Full => write!(f, "full"),
            Completeness::Partial => write!(f, "partial"),
            Completeness::Empty => write!(f, "empty"),
        }
    }
}

/// The honest completeness report attached to every [`AnswerSet`]: what
/// Algorithm 1 attempted against the source, what failed, what was
/// abandoned, and the resulting [`Completeness`] verdict.
///
/// Counters are engine-level (post-resilience): a probe that a
/// [`aimq_storage::ResilientWebDb`] retried into success counts as one
/// successful attempt here, with the raw churn visible in
/// [`DegradationReport::retries`] (taken from the source's access-meter
/// delta).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Probe queries the engine issued (base derivation + relaxation).
    pub probes_attempted: u64,
    /// Probes that came back with a [`QueryError`] after any retries.
    pub probes_failed: u64,
    /// Planned relaxation probes abandoned un-issued after the source
    /// became unavailable.
    pub probes_skipped: u64,
    /// Relaxation levels cut short, summed over abandoned base tuples (a
    /// level is counted when at least one of its steps was skipped).
    pub levels_abandoned: u64,
    /// Result pages the source clipped to its page limit.
    pub truncated_pages: u64,
    /// Source-level retries spent on this query (access-meter delta).
    pub retries: u64,
    /// Circuit-breaker trips during this query (access-meter delta).
    pub breaker_trips: u64,
    /// The source became [`QueryError::Unavailable`] mid-query; all work
    /// after that point was abandoned.
    pub source_lost: bool,
    /// The overall verdict.
    pub completeness: Completeness,
}

impl Default for Completeness {
    fn default() -> Self {
        Completeness::Full
    }
}

impl DegradationReport {
    /// `true` when any fault affected this answer.
    pub fn is_degraded(&self) -> bool {
        self.completeness != Completeness::Full
    }

    /// Record one engine-visible probe outcome (shared by the base-query
    /// derivation and the relaxation loop).
    pub(crate) fn note_attempt(&mut self) {
        self.probes_attempted += 1;
    }

    /// Record a failed probe; flags `source_lost` on terminal errors.
    pub(crate) fn note_failure(&mut self, error: QueryError) {
        self.probes_failed += 1;
        if !error.is_retryable() {
            self.source_lost = true;
        }
    }

    /// Record a clipped result page.
    pub(crate) fn note_truncated(&mut self) {
        self.truncated_pages += 1;
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "completeness={} probes={} failed={} skipped={} levels-abandoned={} \
             truncated={} retries={} breaker-trips={}{}",
            self.completeness,
            self.probes_attempted,
            self.probes_failed,
            self.probes_skipped,
            self.levels_abandoned,
            self.truncated_pages,
            self.retries,
            self.breaker_trips,
            if self.source_lost { " source-lost" } else { "" }
        )
    }
}

/// How an answer entered the extended set — the explainability hook:
/// "this Accord is here because the engine relaxed Make and Model of a
/// base-set Camry".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// The tuple satisfied the (possibly generalized) base query itself.
    BaseSet,
    /// The tuple came from outside the engine (e.g. a caller-supplied
    /// pool re-ranked by the feedback tuner).
    External,
    /// The tuple was retrieved by relaxing `relaxed_attrs` of the
    /// base-set tuple at index `base_index` (into the base set).
    Relaxed {
        /// Index of the originating tuple in the base set.
        base_index: usize,
        /// Attributes whose constraints were dropped.
        relaxed_attrs: Vec<AttrId>,
    },
}

/// One ranked answer.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAnswer {
    /// The answer tuple.
    pub tuple: Tuple,
    /// Its similarity to the *query* (the final ranking key).
    pub similarity: f64,
    /// How the engine found this tuple.
    pub provenance: Provenance,
}

/// The result of answering one imprecise query.
#[derive(Debug, Clone)]
pub struct AnswerSet {
    /// Top-k answers, descending similarity.
    pub answers: Vec<RankedAnswer>,
    /// Access-metering statistics for this query.
    pub stats: WorkStats,
    /// The (possibly generalized) precise query whose answers formed the
    /// base set.
    pub base_query: SelectionQuery,
    /// Size of the base set `|Abs|`.
    pub base_set_size: usize,
    /// What failed, what was skipped, and how complete the answer is.
    pub degradation: DegradationReport,
}

/// Distinct relaxation levels (step sizes) among `steps`.
fn distinct_levels(steps: &[Vec<AttrId>]) -> u64 {
    let mut sizes: Vec<usize> = steps.iter().map(Vec::len).collect();
    sizes.sort_unstable();
    sizes.dedup();
    sizes.len() as u64
}

/// Algorithm 1 ("Finding Relevant Answers") of the paper, hardened for
/// fallible sources.
///
/// `model` supplies both `Sim` functions (tuple–tuple for the `Tsim`
/// filter, query–tuple for the final ranking); `strategy` decides the
/// relaxation order (Guided vs Random).
///
/// The engine never panics on and never hides a source failure: a failed
/// relaxation probe is recorded in the [`DegradationReport`] and skipped;
/// a terminal [`QueryError::Unavailable`] abandons the remaining probe
/// plan (recording how much was abandoned) and returns whatever was
/// already found, with [`Completeness::Partial`] or
/// [`Completeness::Empty`] telling the caller how much the answer can be
/// trusted.
pub fn answer_imprecise_query(
    db: &dyn WebDatabase,
    query: &ImpreciseQuery,
    model: &SimilarityModel,
    strategy: &mut dyn RelaxationStrategy,
    config: &EngineConfig,
) -> AnswerSet {
    let stats_before = db.stats();
    let mut degradation = DegradationReport::default();

    // Step 1: base query and base set.
    let (base_query, base_set) = derive_base_set(
        db,
        query,
        model,
        strategy,
        config.max_relax_level,
        &mut degradation,
    );

    // Extended set, deduplicated across overlapping relaxation queries.
    // Base-set tuples are answers (and relevant) by construction;
    // `examined` additionally remembers rejected candidates so a tuple
    // retrieved by several relaxation queries is looked at once.
    let mut examined: HashSet<Tuple> = HashSet::new();
    let mut extended: Vec<(Tuple, Provenance)> = Vec::new();
    for t in &base_set {
        if examined.insert(t.clone()) {
            extended.push((t.clone(), Provenance::BaseSet));
        }
    }

    // Steps 2-8: relax each base tuple, filter by Sim(t, t') > Tsim. A
    // failed probe is recorded and skipped; a terminal failure abandons
    // the remaining plan (accounted below).
    let expanded_tuples = base_set.iter().take(config.max_base_tuples);
    let mut abandoned_at: Option<usize> = None;
    'outer: for (base_index, t) in expanded_tuples.enumerate() {
        if degradation.source_lost {
            abandoned_at = Some(base_index);
            break;
        }
        let bound = t.bound_attrs();
        let tuple_query = tuple_query_for(model, t, &bound);
        let mut steps = strategy.steps(&bound, config.max_relax_level);
        steps.truncate(config.max_steps_per_tuple);
        for (step_index, step) in steps.iter().enumerate() {
            let relaxed = tuple_query.relax(step);
            if relaxed.is_empty() {
                continue;
            }
            degradation.note_attempt();
            let page = match db.try_query(&relaxed) {
                Ok(page) => page,
                Err(error) => {
                    degradation.note_failure(error);
                    if degradation.source_lost {
                        // Account the rest of this tuple's plan, then
                        // fall to the outer abandonment bookkeeping.
                        let remaining = &steps[step_index + 1..];
                        degradation.probes_skipped += remaining.len() as u64;
                        degradation.levels_abandoned += distinct_levels(remaining);
                        abandoned_at = Some(base_index + 1);
                        break 'outer;
                    }
                    continue;
                }
            };
            if page.truncated {
                degradation.note_truncated();
            }
            for candidate in page.tuples {
                if !examined.insert(candidate.clone()) {
                    continue;
                }
                let sim = model.tuple_similarity(t, &candidate, &bound);
                if sim > config.t_sim {
                    extended.push((
                        candidate,
                        Provenance::Relaxed {
                            base_index,
                            relaxed_attrs: step.clone(),
                        },
                    ));
                    if config
                        .target_relevant
                        .is_some_and(|target| extended.len() >= target)
                    {
                        break 'outer;
                    }
                }
            }
        }
    }

    // Terminal abandonment: account the base tuples never expanded, so
    // the report says how much of the plan was dropped.
    if let Some(from) = abandoned_at {
        for t in base_set.iter().take(config.max_base_tuples).skip(from) {
            let bound = t.bound_attrs();
            let mut steps = strategy.steps(&bound, config.max_relax_level);
            steps.truncate(config.max_steps_per_tuple);
            degradation.probes_skipped += steps.len() as u64;
            degradation.levels_abandoned += distinct_levels(&steps);
        }
    }

    // Step 9: rank the extended set by similarity to the query; top-k.
    let relevant_found = extended.len();
    let mut answers: Vec<RankedAnswer> = extended
        .into_iter()
        .map(|(tuple, provenance)| {
            let similarity = model.query_similarity(query, &tuple);
            RankedAnswer {
                tuple,
                similarity,
                provenance,
            }
        })
        .collect();
    answers.sort_by(|a, b| {
        b.similarity
            .total_cmp(&a.similarity)
            .then_with(|| a.tuple.values().cmp(b.tuple.values()))
    });
    answers.truncate(config.top_k);

    let stats_after = db.stats();
    let delta = stats_after.since(&stats_before);
    degradation.retries = delta.retries;
    degradation.breaker_trips = delta.breaker_trips;
    let faulted = degradation.probes_failed > 0
        || degradation.probes_skipped > 0
        || degradation.truncated_pages > 0
        || degradation.source_lost;
    degradation.completeness = match (faulted, answers.is_empty()) {
        (false, _) => Completeness::Full,
        (true, false) => Completeness::Partial,
        (true, true) => Completeness::Empty,
    };

    AnswerSet {
        answers,
        stats: WorkStats {
            queries_issued: delta.queries_issued,
            tuples_extracted: delta.tuples_returned,
            tuples_examined: examined.len(),
            relevant_found,
        },
        base_query,
        base_set_size: base_set.len(),
        degradation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_per_relevant_handles_zero() {
        let s = WorkStats::default();
        assert_eq!(s.work_per_relevant(), None);
        let s = WorkStats {
            queries_issued: 3,
            tuples_extracted: 55,
            tuples_examined: 40,
            relevant_found: 10,
        };
        assert_eq!(s.work_per_relevant(), Some(4.0));
    }

    #[test]
    fn default_config_is_sane() {
        let c = EngineConfig::default();
        assert!(c.t_sim > 0.0 && c.t_sim < 1.0);
        assert!(c.top_k >= 1);
        assert!(c.max_relax_level >= 1);
    }

    #[test]
    fn default_report_is_full_and_clean() {
        let r = DegradationReport::default();
        assert_eq!(r.completeness, Completeness::Full);
        assert!(!r.is_degraded());
        assert!(r.to_string().starts_with("completeness=full"));
    }

    #[test]
    fn report_display_is_one_line() {
        let r = DegradationReport {
            probes_attempted: 12,
            probes_failed: 2,
            probes_skipped: 3,
            levels_abandoned: 1,
            truncated_pages: 4,
            retries: 5,
            breaker_trips: 1,
            source_lost: true,
            completeness: Completeness::Partial,
        };
        let line = r.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("completeness=partial"));
        assert!(line.contains("source-lost"));
        assert!(r.is_degraded());
    }

    #[test]
    fn distinct_levels_counts_step_sizes() {
        let steps = vec![vec![AttrId(0)], vec![AttrId(1)], vec![AttrId(0), AttrId(1)]];
        assert_eq!(distinct_levels(&steps), 2);
        assert_eq!(distinct_levels(&[]), 0);
    }
}
