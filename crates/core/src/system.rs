use std::fmt;
use std::time::{Duration, Instant};

use aimq_afd::{
    AttributeOrdering, BucketConfig, EncodedRelation, MinedDependencies, OrderingError, TaneConfig,
};
use aimq_catalog::{AttrId, ImpreciseQuery};
use aimq_sim::{SimConfig, SimilarityModel};
use aimq_storage::{probe_by_spanning_queries, ProbeError, Relation, WebDatabase};

use crate::engine::{answer_imprecise_query, AnswerSet, EngineConfig};
use crate::{GuidedRelax, RelaxationStrategy};

/// Errors raised while assembling an [`AimqSystem`].
#[derive(Debug)]
pub enum AimqError {
    /// The training sample was empty.
    EmptySample,
    /// Attribute ordering failed (empty schema etc.).
    Ordering(OrderingError),
    /// Probing the source failed — either a catalog mismatch or a source
    /// failure that survived the client-side resilience policy. Training
    /// never proceeds on a silently short sample.
    Probe(ProbeError),
}

impl fmt::Display for AimqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AimqError::EmptySample => write!(f, "training sample is empty"),
            AimqError::Ordering(e) => write!(f, "attribute ordering failed: {e}"),
            AimqError::Probe(e) => write!(f, "probing failed: {e}"),
        }
    }
}

impl std::error::Error for AimqError {}

impl From<OrderingError> for AimqError {
    fn from(e: OrderingError) -> Self {
        AimqError::Ordering(e)
    }
}

impl From<ProbeError> for AimqError {
    fn from(e: ProbeError) -> Self {
        AimqError::Probe(e)
    }
}

/// Offline training configuration (Dependency Miner + Similarity Miner).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// TANE parameters (error threshold `Terr`, lattice caps).
    pub tane: TaneConfig,
    /// Numeric bucketing shared by AFD mining and supertuple bags; `None`
    /// uses per-schema defaults.
    pub bucket: Option<BucketConfig>,
    /// Laplace smoothing of Algorithm 2's weight shares (0 = the paper's
    /// exact formula; attributes with no AFD evidence then get zero
    /// importance).
    pub smoothing: f64,
    /// Skip Algorithm 2 and give every attribute equal importance — the
    /// model the paper attributes to RandomRelax and ROCK ("give equal
    /// importance to all the attributes", Section 6.4). AFDs are still
    /// mined for reporting.
    pub use_uniform_importance: bool,
    /// Mine the per-attribute similarity matrices on worker threads
    /// (bit-identical results; helps when one attribute has many distinct
    /// values).
    pub parallel_similarity: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            tane: TaneConfig::default(),
            bucket: None,
            smoothing: 0.0,
            use_uniform_importance: false,
            parallel_similarity: false,
        }
    }
}

/// Wall-clock timing of AIMQ's two offline phases (Table 2's AIMQ rows).
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainTimings {
    /// Dependency mining + attribute ordering.
    pub dependency_mining: Duration,
    /// Supertuple generation + pairwise value-similarity estimation.
    pub similarity_estimation: Duration,
}

/// The assembled AIMQ system of the paper's Figure 1: mined dependencies,
/// attribute ordering, value-similarity model and query engine.
#[derive(Debug, Clone)]
pub struct AimqSystem {
    mined: MinedDependencies,
    ordering: AttributeOrdering,
    model: SimilarityModel,
    timings: TrainTimings,
}

impl AimqSystem {
    /// Train from an already-collected sample relation (the paper's
    /// robustness experiments feed samples of several sizes).
    pub fn train(sample: &Relation, config: &TrainConfig) -> Result<Self, AimqError> {
        if sample.is_empty() {
            return Err(AimqError::EmptySample);
        }
        let schema = sample.schema().clone();
        let bucket = config
            .bucket
            .clone()
            .unwrap_or_else(|| BucketConfig::for_schema(&schema));

        // aimq-lint: allow(wallclock) -- offline training timing (paper Table 2); never drives query-time decisions
        let t0 = Instant::now();
        let enc = EncodedRelation::encode(sample, &bucket);
        let mined = MinedDependencies::mine(&enc, &config.tane);
        let ordering = if config.use_uniform_importance {
            AttributeOrdering::uniform(&schema)?
        } else {
            AttributeOrdering::derive_with_smoothing(&schema, &mined, config.smoothing)?
        };
        let dependency_mining = t0.elapsed(); // aimq-lint: allow(wallclock) -- stopwatch readout

        // aimq-lint: allow(wallclock) -- offline training timing (paper Table 2); never drives query-time decisions
        let t1 = Instant::now();
        let sim_config = SimConfig { bucket };
        let model = if config.parallel_similarity {
            SimilarityModel::build_parallel(sample, &ordering, &sim_config)
        } else {
            SimilarityModel::build(sample, &ordering, &sim_config)
        };
        let similarity_estimation = t1.elapsed(); // aimq-lint: allow(wallclock) -- stopwatch readout

        Ok(AimqSystem {
            mined,
            ordering,
            model,
            timings: TrainTimings {
                dependency_mining,
                similarity_estimation,
            },
        })
    }

    /// Assemble a system from externally built parts — e.g. an ordering
    /// from a query log ([`AttributeOrdering::from_query_log`]) paired
    /// with a similarity model mined under it.
    pub fn from_parts(
        mined: MinedDependencies,
        ordering: AttributeOrdering,
        model: SimilarityModel,
    ) -> Self {
        AimqSystem {
            mined,
            ordering,
            model,
            timings: TrainTimings::default(),
        }
    }

    /// Probe an autonomous source through its boolean interface (the Data
    /// Collector of Figure 1) and train on the probed sample.
    pub fn probe_and_train(
        db: &dyn WebDatabase,
        spanning_attr: AttrId,
        spanning_values: &[String],
        sample_target: usize,
        seed: u64,
        config: &TrainConfig,
    ) -> Result<Self, AimqError> {
        let sample =
            probe_by_spanning_queries(db, spanning_attr, spanning_values, sample_target, seed)
                .map_err(AimqError::Probe)?;
        Self::train(&sample, config)
    }

    /// Answer an imprecise query with the default `GuidedRelax` strategy.
    pub fn answer(
        &self,
        db: &dyn WebDatabase,
        query: &ImpreciseQuery,
        config: &EngineConfig,
    ) -> AnswerSet {
        let mut strategy = GuidedRelax::new(self.ordering.clone());
        self.answer_with_strategy(db, query, config, &mut strategy)
    }

    /// Answer with an explicit relaxation strategy (the evaluation harness
    /// swaps in `RandomRelax` here).
    pub fn answer_with_strategy(
        &self,
        db: &dyn WebDatabase,
        query: &ImpreciseQuery,
        config: &EngineConfig,
        strategy: &mut dyn RelaxationStrategy,
    ) -> AnswerSet {
        answer_imprecise_query(db, query, &self.model, strategy, config)
    }

    /// The mined AFDs and approximate keys.
    pub fn mined(&self) -> &MinedDependencies {
        &self.mined
    }

    /// The Algorithm-2 attribute ordering.
    pub fn ordering(&self) -> &AttributeOrdering {
        &self.ordering
    }

    /// The mined value-similarity model.
    pub fn model(&self) -> &SimilarityModel {
        &self.model
    }

    /// Offline phase timings.
    pub fn timings(&self) -> TrainTimings {
        self.timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomRelax;
    use aimq_catalog::{Schema, Tuple, Value};
    use aimq_storage::{InMemoryWebDb, Relation};

    fn car_schema() -> Schema {
        Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .categorical("Year")
            .numeric("Price")
            .categorical("Color")
            .build()
            .unwrap()
    }

    fn car(make: &str, model: &str, year: i32, price: f64, color: &str) -> Tuple {
        Tuple::new(
            &car_schema(),
            vec![
                Value::cat(make),
                Value::cat(model),
                Value::cat(year.to_string()),
                Value::num(price),
                Value::cat(color),
            ],
        )
        .unwrap()
    }

    /// A corpus rich enough for co-occurrence mining: Camry and Accord
    /// interleave across the same years/prices/colors; Corolla and Civic
    /// form a cheaper cluster; F150s sit far away in price.
    fn test_db() -> InMemoryWebDb {
        let colors = ["White", "Black", "Silver"];
        let mut tuples = Vec::new();
        for i in 0..8i32 {
            let year = 1998 + (i % 6);
            let color = colors[(i % 3) as usize];
            tuples.push(car(
                "Toyota",
                "Camry",
                year,
                8200.0 + 250.0 * f64::from(i),
                color,
            ));
            tuples.push(car(
                "Honda",
                "Accord",
                year,
                8350.0 + 250.0 * f64::from(i),
                color,
            ));
        }
        for i in 0..4i32 {
            let year = 1999 + i;
            tuples.push(car(
                "Toyota",
                "Corolla",
                year,
                6600.0 + 200.0 * f64::from(i),
                colors[(i % 3) as usize],
            ));
            tuples.push(car(
                "Honda",
                "Civic",
                year,
                6500.0 + 200.0 * f64::from(i),
                colors[((i + 1) % 3) as usize],
            ));
        }
        for i in 0..6i32 {
            tuples.push(car(
                "Ford",
                "F150",
                2000 + (i % 4),
                24000.0 + 500.0 * f64::from(i),
                "Red",
            ));
        }
        InMemoryWebDb::new(Relation::from_tuples(car_schema(), &tuples).unwrap())
    }

    fn trained(db: &InMemoryWebDb) -> AimqSystem {
        AimqSystem::train(db.relation(), &TrainConfig::default()).unwrap()
    }

    /// Trained with uniform importance — robust on tiny corpora where the
    /// mined weights are degenerate.
    fn trained_uniform(db: &InMemoryWebDb) -> AimqSystem {
        AimqSystem::train(
            db.relation(),
            &TrainConfig {
                use_uniform_importance: true,
                ..TrainConfig::default()
            },
        )
        .unwrap()
    }

    fn camry_query() -> ImpreciseQuery {
        ImpreciseQuery::builder(&car_schema())
            .like("Model", Value::cat("Camry"))
            .unwrap()
            .like("Price", Value::num(9000.0))
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_answers_are_ranked_and_relevant() {
        let db = test_db();
        let system = trained(&db);
        let result = system.answer(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.5,
                top_k: 10,
                ..EngineConfig::default()
            },
        );
        assert!(!result.answers.is_empty());
        for w in result.answers.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
        // The top answer should be a sedan near the asked price, never a
        // truck.
        let top = &result.answers[0].tuple;
        assert_ne!(top.value(AttrId(1)).as_cat(), Some("F150"));
    }

    #[test]
    fn paper_scenario_returns_similar_model_beyond_exact_matches() {
        let db = test_db();
        let system = trained_uniform(&db);
        let result = system.answer(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.3,
                top_k: 40,
                max_relax_level: 2,
                ..EngineConfig::default()
            },
        );
        let models: Vec<&str> = result
            .answers
            .iter()
            .filter_map(|a| a.tuple.value(AttrId(1)).as_cat())
            .collect();
        assert!(models.contains(&"Camry"));
        assert!(
            models.contains(&"Accord"),
            "Accords priced ~9k should surface: {models:?}"
        );
        // And Camrys (exact model match) should outrank the best Accord.
        let first_camry = models.iter().position(|&m| m == "Camry").unwrap();
        let first_accord = models.iter().position(|&m| m == "Accord").unwrap();
        assert!(first_camry < first_accord);
    }

    #[test]
    fn make_is_more_dependent_than_model() {
        // Model → Make holds exactly, so Make accumulates more dependence
        // weight than Model — the Figure 3 claim ("Model is the least
        // dependent ... while Make is the most dependent").
        let db = test_db();
        let system = trained(&db);
        let ord = system.ordering();
        assert!(ord.wt_depends(AttrId(0)) > ord.wt_depends(AttrId(1)));
    }

    #[test]
    fn stats_meter_the_work() {
        let db = test_db();
        let system = trained(&db);
        db.reset_stats();
        let result = system.answer(&db, &camry_query(), &EngineConfig::default());
        assert!(result.stats.queries_issued > 0);
        assert!(result.stats.tuples_extracted > 0);
        assert_eq!(db.stats().queries_issued, result.stats.queries_issued);
    }

    #[test]
    fn top_k_truncates() {
        let db = test_db();
        let system = trained_uniform(&db);
        let result = system.answer(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.2,
                top_k: 3,
                ..EngineConfig::default()
            },
        );
        assert!(result.answers.len() <= 3);
    }

    #[test]
    fn target_relevant_stops_early() {
        let db = test_db();
        let system = trained_uniform(&db);
        let capped = system.answer(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.2,
                target_relevant: Some(2),
                ..EngineConfig::default()
            },
        );
        // target counts the whole extended set (base tuples included).
        assert!(capped.stats.relevant_found <= 2 + capped.base_set_size);
        let uncapped = system.answer(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.2,
                target_relevant: None,
                ..EngineConfig::default()
            },
        );
        assert!(uncapped.stats.tuples_extracted >= capped.stats.tuples_extracted);
    }

    #[test]
    fn random_strategy_also_works() {
        let db = test_db();
        let system = trained_uniform(&db);
        let mut random = RandomRelax::new(3);
        let result = system.answer_with_strategy(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.3,
                ..EngineConfig::default()
            },
            &mut random,
        );
        assert!(!result.answers.is_empty());
    }

    #[test]
    fn no_duplicate_answers() {
        let db = test_db();
        let system = trained_uniform(&db);
        let result = system.answer(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.2,
                top_k: 100,
                ..EngineConfig::default()
            },
        );
        let mut tuples: Vec<_> = result.answers.iter().map(|a| &a.tuple).collect();
        let before = tuples.len();
        tuples.sort_by_key(|t| format!("{t:?}"));
        tuples.dedup();
        assert_eq!(tuples.len(), before);
    }

    #[test]
    fn similarities_within_unit_interval() {
        let db = test_db();
        let system = trained_uniform(&db);
        let result = system.answer(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.2,
                top_k: 100,
                ..EngineConfig::default()
            },
        );
        for a in &result.answers {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&a.similarity),
                "similarity {}",
                a.similarity
            );
        }
    }

    #[test]
    fn smoothing_gives_every_attribute_some_importance() {
        let db = test_db();
        let smoothed = AimqSystem::train(
            db.relation(),
            &TrainConfig {
                smoothing: 0.1,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        for a in car_schema().attr_ids() {
            assert!(
                smoothed.ordering().importance(a) > 0.0,
                "attr {a} has zero importance despite smoothing"
            );
        }
    }

    #[test]
    fn empty_sample_is_error() {
        let empty = Relation::builder(car_schema()).build();
        assert!(matches!(
            AimqSystem::train(&empty, &TrainConfig::default()),
            Err(AimqError::EmptySample)
        ));
    }

    #[test]
    fn probe_and_train_goes_through_web_interface() {
        let db = test_db();
        db.reset_stats();
        let makes: Vec<String> = ["Toyota", "Honda", "Ford"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let system =
            AimqSystem::probe_and_train(&db, AttrId(0), &makes, 1000, 1, &TrainConfig::default())
                .unwrap();
        assert!(db.stats().queries_issued >= 3);
        let result = system.answer(&db, &camry_query(), &EngineConfig::default());
        assert!(!result.answers.is_empty());
    }

    #[test]
    fn provenance_explains_each_answer() {
        use crate::Provenance;
        let db = test_db();
        let system = trained_uniform(&db);
        let result = system.answer(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.3,
                top_k: 40,
                ..EngineConfig::default()
            },
        );
        let mut saw_base = false;
        let mut saw_relaxed = false;
        for a in &result.answers {
            match &a.provenance {
                Provenance::BaseSet => {
                    saw_base = true;
                    assert!(result.base_query.matches(&a.tuple));
                }
                Provenance::Relaxed {
                    base_index,
                    relaxed_attrs,
                } => {
                    saw_relaxed = true;
                    assert!(*base_index < result.base_set_size);
                    assert!(!relaxed_attrs.is_empty());
                }
                Provenance::External => panic!("engine never emits External"),
            }
        }
        assert!(saw_base, "base-set answers must be present");
        assert!(saw_relaxed, "relaxation answers expected at low Tsim");
    }

    #[test]
    fn timings_are_recorded() {
        let db = test_db();
        let system = trained(&db);
        let t = system.timings();
        let _ = t.dependency_mining + t.similarity_estimation;
    }

    #[test]
    fn fault_free_answer_reports_full_completeness() {
        use crate::Completeness;
        let db = test_db();
        let system = trained_uniform(&db);
        let result = system.answer(&db, &camry_query(), &EngineConfig::default());
        assert_eq!(result.degradation.completeness, Completeness::Full);
        assert!(!result.degradation.is_degraded());
        assert_eq!(result.degradation.probes_failed, 0);
        assert_eq!(result.degradation.probes_skipped, 0);
    }

    #[test]
    fn flaky_source_behind_retries_still_answers() {
        use crate::Completeness;
        use aimq_storage::{FaultInjectingWebDb, FaultProfile, ResilientWebDb, RetryPolicy};
        let clean = test_db();
        let system = trained_uniform(&clean);
        let expected = system.answer(&clean, &camry_query(), &EngineConfig::default());

        let faulty = FaultInjectingWebDb::new(test_db(), FaultProfile::flaky(), 7);
        let resilient = ResilientWebDb::new(faulty, RetryPolicy::default());
        let result = system.answer(&resilient, &camry_query(), &EngineConfig::default());

        // Retries absorb 10% transient faults completely: identical
        // answers, and the engine saw no failures (Full), only the meter
        // shows the churn.
        assert_eq!(result.degradation.completeness, Completeness::Full);
        let tuples = |r: &AnswerSet| -> Vec<String> {
            r.answers.iter().map(|a| format!("{:?}", a.tuple)).collect()
        };
        assert_eq!(tuples(&result), tuples(&expected));
    }

    #[test]
    fn dead_source_yields_marked_empty_never_a_panic() {
        use crate::Completeness;
        use aimq_storage::{FaultInjectingWebDb, FaultProfile};
        let db = FaultInjectingWebDb::new(
            test_db(),
            FaultProfile {
                unavailable_probability: 1.0,
                ..FaultProfile::none()
            },
            1,
        );
        let system = trained_uniform(&test_db());
        let result = system.answer(&db, &camry_query(), &EngineConfig::default());
        assert!(result.answers.is_empty());
        assert_eq!(result.degradation.completeness, Completeness::Empty);
        assert!(result.degradation.source_lost);
        assert!(result.degradation.probes_failed >= 1);
    }

    #[test]
    fn truncating_source_is_partial_not_silent() {
        use crate::Completeness;
        let db = test_db().with_result_limit(3);
        let system = trained_uniform(&test_db());
        let result = system.answer(
            &db,
            &camry_query(),
            &EngineConfig {
                t_sim: 0.3,
                ..EngineConfig::default()
            },
        );
        assert!(result.degradation.truncated_pages > 0);
        assert!(!result.answers.is_empty());
        assert_eq!(result.degradation.completeness, Completeness::Partial);
    }

    #[test]
    fn mid_query_source_loss_accounts_abandoned_plan() {
        use crate::Completeness;
        use aimq_storage::{FaultInjectingWebDb, FaultProfile};
        // Die hard on roughly every second probe: the first Unavailable
        // abandons the remaining plan, which must be visible as skipped
        // probes / abandoned levels rather than vanish.
        let db = FaultInjectingWebDb::new(
            test_db(),
            FaultProfile {
                unavailable_probability: 0.5,
                ..FaultProfile::none()
            },
            5,
        );
        let system = trained_uniform(&test_db());
        let result = system.answer(&db, &camry_query(), &EngineConfig::default());
        assert!(result.degradation.source_lost);
        assert_ne!(result.degradation.completeness, Completeness::Full);
        if result.base_set_size > 0 {
            assert!(
                result.degradation.probes_skipped > 0
                    || result.degradation.levels_abandoned > 0
                    || result.degradation.probes_failed > 0
            );
        }
    }
}
