use aimq_catalog::{ImpreciseQuery, SelectionQuery, Tuple};
use aimq_sim::SimilarityModel;
use aimq_storage::WebDatabase;

use crate::bind::precise_query_for;
use crate::engine::{DegradationReport, ProbeMemo};
use crate::RelaxationStrategy;

/// Map an imprecise query to its base query `Qpr` and fetch the base set
/// `Abs` (Algorithm 1, step 1).
///
/// `Qpr` tightens every `like` into `=` (categorical) or the containing
/// bucket band (numeric; see `precise_query_for`). If its answer set is empty,
/// the paper's footnote 2 applies: "We assume a non-null resultset for Qpr
/// or one of its *generalizations*. The attribute ordering heuristic … is
/// useful in relaxing Qpr also." — so we relax `Qpr` step by step using
/// the same strategy that will drive tuple relaxation, returning the first
/// generalization with answers.
///
/// Probes go through the fallible [`WebDatabase::try_query`] interface. A
/// failed probe is recorded in `report` and skipped — the next
/// generalization is tried instead — except a terminal
/// [`aimq_storage::QueryError::Unavailable`], which flags
/// `report.source_lost` and abandons the derivation (counting the
/// generalizations never tried as skipped probes).
///
/// Returns `(query_used, base_set)`; the base set is empty only when even
/// the loosest permitted generalization matches nothing — or when the
/// source was lost, which `report` distinguishes.
pub fn derive_base_set(
    db: &dyn WebDatabase,
    query: &ImpreciseQuery,
    model: &SimilarityModel,
    strategy: &mut dyn RelaxationStrategy,
    max_level: usize,
    report: &mut DegradationReport,
) -> (SelectionQuery, Vec<Tuple>) {
    derive_base_set_memoized(
        db,
        query,
        model,
        strategy,
        max_level,
        report,
        &mut ProbeMemo::disabled(),
    )
}

/// [`derive_base_set`] with the engine's per-call probe memo threaded
/// through: every successful page (the base query's and each
/// generalization's) is recorded under its canonical query form, so the
/// relaxation loop replays instead of re-issuing any probe that
/// reproduces a derivation query. Derivation itself never repeats a
/// query (the generalization steps are distinct subsets), so it only
/// records.
// aimq-probe: entry -- base-set derivation (Section 4); pages memoized per call, failures propagate as QueryError
pub(crate) fn derive_base_set_memoized(
    db: &dyn WebDatabase,
    query: &ImpreciseQuery,
    model: &SimilarityModel,
    strategy: &mut dyn RelaxationStrategy,
    max_level: usize,
    report: &mut DegradationReport,
    memo: &mut ProbeMemo,
) -> (SelectionQuery, Vec<Tuple>) {
    let base = precise_query_for(model, query.bindings());
    // Probe with the canonical form: the memo and any downstream cache
    // key on it, and issuing it directly lets the cache borrow the key
    // instead of re-canonicalizing (the forms select the same tuples).
    let base_key = base.canonicalize();
    report.note_attempt();
    match db.try_query(&base_key) {
        Ok(page) => {
            if page.truncated {
                report.note_truncated();
            }
            memo.record(base_key, &page);
            if !page.tuples.is_empty() {
                return (base, page.tuples);
            }
        }
        Err(error) => {
            report.note_failure(error);
            if report.source_lost {
                return (base, Vec::new());
            }
        }
    }

    let bound = base.bound_attrs();
    let steps = strategy.steps(&bound, max_level);
    for (step_index, step) in steps.iter().enumerate() {
        let relaxed = base.relax(step);
        if relaxed.is_empty() {
            continue;
        }
        let relaxed_key = relaxed.canonicalize();
        report.note_attempt();
        match db.try_query(&relaxed_key) {
            Ok(page) => {
                if page.truncated {
                    report.note_truncated();
                }
                memo.record(relaxed_key, &page);
                if !page.tuples.is_empty() {
                    return (relaxed, page.tuples);
                }
            }
            Err(error) => {
                report.note_failure(error);
                if report.source_lost {
                    report.probes_skipped += (steps.len() - step_index - 1) as u64;
                    return (base, Vec::new());
                }
            }
        }
    }
    (base, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomRelax;
    use aimq_afd::{AttributeOrdering, BucketConfig};
    use aimq_catalog::{AttrId, BucketSpec, Schema, Value};
    use aimq_sim::SimConfig;
    use aimq_storage::{InMemoryWebDb, Relation};

    fn model(db: &InMemoryWebDb) -> SimilarityModel {
        let schema = db.relation().schema().clone();
        let ordering = AttributeOrdering::uniform(&schema).unwrap();
        // Narrow price buckets so the banded base query behaves almost
        // like equality in these tests.
        let bucket =
            BucketConfig::for_schema(&schema).with_spec(AttrId(2), BucketSpec::width(100.0));
        SimilarityModel::build(db.relation(), &ordering, &SimConfig { bucket })
    }

    fn db() -> InMemoryWebDb {
        let schema = schema();
        let rows = [
            ("Toyota", "Camry", 10000.0),
            ("Toyota", "Camry", 12000.0),
            ("Honda", "Accord", 9000.0),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(mk, md, p)| {
                Tuple::new(&schema, vec![Value::cat(mk), Value::cat(md), Value::num(p)]).unwrap()
            })
            .collect();
        InMemoryWebDb::new(Relation::from_tuples(schema, &tuples).unwrap())
    }

    fn schema() -> Schema {
        Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .numeric("Price")
            .build()
            .unwrap()
    }

    #[test]
    fn exact_base_query_when_nonempty() {
        let db = db();
        let q = ImpreciseQuery::builder(&schema())
            .like("Model", Value::cat("Camry"))
            .unwrap()
            .like("Price", Value::num(10000.0))
            .unwrap()
            .build()
            .unwrap();
        let mut strategy = RandomRelax::new(1);
        let m = model(&db);
        let mut report = DegradationReport::default();
        let (used, base_set) = derive_base_set(&db, &q, &m, &mut strategy, 2, &mut report);
        assert_eq!(base_set.len(), 1);
        assert_eq!(used.bound_attrs().len(), 2); // no generalization needed
        assert_eq!(report.probes_failed, 0);
        assert_eq!(report.probes_attempted, 1);
    }

    #[test]
    fn generalizes_when_base_query_is_empty() {
        let db = db();
        // No Camry near 9500 (width-100 buckets) → must generalize.
        let q = ImpreciseQuery::builder(&schema())
            .like("Model", Value::cat("Camry"))
            .unwrap()
            .like("Price", Value::num(9550.0))
            .unwrap()
            .build()
            .unwrap();
        let mut strategy = RandomRelax::new(1);
        let m = model(&db);
        let mut report = DegradationReport::default();
        let (used, base_set) = derive_base_set(&db, &q, &m, &mut strategy, 2, &mut report);
        assert!(!base_set.is_empty(), "generalization must find answers");
        assert!(used.bound_attrs().len() < 2);
        // Whatever was kept, the answers satisfy it.
        assert!(base_set.iter().all(|t| used.matches(t)));
    }

    #[test]
    fn unsatisfiable_query_returns_empty() {
        let db = db();
        let q = ImpreciseQuery::builder(&schema())
            .like("Model", Value::cat("DeLorean"))
            .unwrap()
            .build()
            .unwrap();
        let mut strategy = RandomRelax::new(1);
        let m = model(&db);
        let mut report = DegradationReport::default();
        let (_, base_set) = derive_base_set(&db, &q, &m, &mut strategy, 2, &mut report);
        // Single binding: relaxing it fully is not permitted, so no
        // generalization exists.
        assert!(base_set.is_empty());
        // No fault was involved: the emptiness is genuine.
        assert_eq!(report.probes_failed, 0);
        assert!(!report.source_lost);
    }
}
