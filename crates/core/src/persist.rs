//! Binary persistence for trained [`AimqSystem`]s.
//!
//! Training mines TANE dependencies and a full value-similarity model —
//! cheap enough to redo on a laptop, but wasteful to repeat for every
//! query session over the same source (the paper's deployment mines
//! *offline* and answers *online*). [`AimqSystem::to_bytes`] /
//! [`AimqSystem::from_bytes`] serialize everything the online phase
//! needs: schema, mined AFDs/keys, the Algorithm-2 ordering and the
//! similarity matrices with their bucket specs.
//!
//! The format is a versioned little-endian binary layout built with the
//! `bytes` crate (length-prefixed strings and vectors; a magic header
//! guards against feeding arbitrary files in). It is *not* a long-term
//! interchange format — readers reject any version they don't know.

use std::fmt;

use aimq_afd::{AKey, Afd, AttrSet, AttributeOrdering, MinedDependencies};
use aimq_catalog::{AttrId, BucketSpec, Domain, Schema};
use aimq_sim::{SimilarityModel, ValueSimMatrix};
use aimq_storage::Dictionary;
use bytes::{Buf, BufMut};

use crate::system::AimqSystem;

const MAGIC: &[u8; 4] = b"AIMQ";
const VERSION: u32 = 1;

/// Errors raised while decoding a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The input does not start with the `AIMQ` magic.
    BadMagic,
    /// The input's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The input ended before the structure was complete.
    Truncated,
    /// A decoded string was not valid UTF-8.
    BadString,
    /// Decoded parts failed structural validation (corrupted input).
    Corrupted(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an AIMQ model file"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported model format version {v}")
            }
            PersistError::Truncated => write!(f, "model file is truncated"),
            PersistError::BadString => write!(f, "model file holds invalid UTF-8"),
            PersistError::Corrupted(what) => write!(f, "model file is corrupted: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------- encode

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    out.put_u32_le(xs.len() as u32);
    for &x in xs {
        out.put_f64_le(x);
    }
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_string(out, schema.name());
    out.put_u16_le(schema.arity() as u16);
    for attr in schema.attributes() {
        put_string(out, attr.name());
        out.put_u8(match attr.domain() {
            Domain::Categorical => 0,
            Domain::Numeric => 1,
        });
    }
}

fn put_ordering(out: &mut Vec<u8>, ordering: &AttributeOrdering) {
    let n = ordering.schema().arity();
    out.put_u16_le(n as u16);
    for &attr in ordering.relaxation_order() {
        out.put_u16_le(attr.index() as u16);
    }
    let attrs: Vec<AttrId> = ordering.schema().attr_ids().collect();
    put_f64s(
        out,
        &attrs
            .iter()
            .map(|&a| ordering.importance(a))
            .collect::<Vec<_>>(),
    );
    out.put_u64_le(ordering.deciding().bits());
    out.put_u64_le(ordering.dependent().bits());
    put_f64s(
        out,
        &attrs
            .iter()
            .map(|&a| ordering.wt_decides(a))
            .collect::<Vec<_>>(),
    );
    put_f64s(
        out,
        &attrs
            .iter()
            .map(|&a| ordering.wt_depends(a))
            .collect::<Vec<_>>(),
    );
}

fn put_mined(out: &mut Vec<u8>, mined: &MinedDependencies) {
    out.put_u16_le(mined.n_attrs() as u16);
    out.put_u32_le(mined.afds().len() as u32);
    for afd in mined.afds() {
        out.put_u64_le(afd.lhs.bits());
        out.put_u16_le(afd.rhs.index() as u16);
        out.put_f64_le(afd.error);
    }
    out.put_u32_le(mined.keys().len() as u32);
    for key in mined.keys() {
        out.put_u64_le(key.attrs.bits());
        out.put_f64_le(key.error);
    }
}

fn put_model(out: &mut Vec<u8>, model: &SimilarityModel) {
    let schema = model.schema();
    for attr in schema.attr_ids() {
        match model.matrix(attr) {
            None => out.put_u8(0),
            Some(matrix) => {
                out.put_u8(1);
                let values = matrix.values();
                out.put_u32_le(values.len() as u32);
                for v in values {
                    put_string(out, v);
                }
                put_f64s(out, matrix.raw_sims());
            }
        }
        match model.bucket_spec(attr) {
            None => out.put_u8(0),
            Some(spec) => {
                out.put_u8(1);
                out.put_f64_le(spec.origin);
                out.put_f64_le(spec.width);
            }
        }
    }
}

// ---------------------------------------------------------------- decode

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize) -> Result<(), PersistError> {
        if self.buf.remaining() < n {
            Err(PersistError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16, PersistError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let mut bytes = vec![0u8; len];
        self.buf.copy_to_slice(&mut bytes);
        String::from_utf8(bytes).map_err(|_| PersistError::BadString)
    }

    fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let len = self.u32()? as usize;
        self.need(len.checked_mul(8).ok_or(PersistError::Truncated)?)?;
        (0..len).map(|_| self.f64()).collect()
    }
}

fn get_schema(r: &mut Reader) -> Result<Schema, PersistError> {
    let name = r.string()?;
    let arity = r.u16()? as usize;
    let mut builder = Schema::builder(name);
    for _ in 0..arity {
        let attr_name = r.string()?;
        builder = match r.u8()? {
            0 => builder.categorical(attr_name),
            1 => builder.numeric(attr_name),
            _ => return Err(PersistError::Corrupted("unknown attribute domain tag")),
        };
    }
    builder
        .build()
        .map_err(|_| PersistError::Corrupted("invalid schema"))
}

fn get_ordering(r: &mut Reader, schema: &Schema) -> Result<AttributeOrdering, PersistError> {
    let n = r.u16()? as usize;
    if n != schema.arity() {
        return Err(PersistError::Corrupted("ordering arity mismatch"));
    }
    let relax_order: Vec<AttrId> = (0..n)
        .map(|_| r.u16().map(|i| AttrId(i as usize)))
        .collect::<Result<_, _>>()?;
    let importance = r.f64s()?;
    let deciding = AttrSet::from_bits(r.u64()?);
    let dependent = AttrSet::from_bits(r.u64()?);
    let wt_decides = r.f64s()?;
    let wt_depends = r.f64s()?;
    AttributeOrdering::from_raw_parts(
        schema.clone(),
        relax_order,
        importance,
        deciding,
        dependent,
        wt_decides,
        wt_depends,
    )
    .map_err(|_| PersistError::Corrupted("invalid ordering"))
}

fn get_mined(r: &mut Reader) -> Result<MinedDependencies, PersistError> {
    let n_attrs = r.u16()? as usize;
    let n_afds = r.u32()? as usize;
    let mut afds = Vec::with_capacity(n_afds.min(1 << 20));
    for _ in 0..n_afds {
        let lhs = AttrSet::from_bits(r.u64()?);
        let rhs = AttrId(r.u16()? as usize);
        let error = r.f64()?;
        afds.push(Afd { lhs, rhs, error });
    }
    let n_keys = r.u32()? as usize;
    let mut keys = Vec::with_capacity(n_keys.min(1 << 20));
    for _ in 0..n_keys {
        let attrs = AttrSet::from_bits(r.u64()?);
        let error = r.f64()?;
        keys.push(AKey { attrs, error });
    }
    Ok(MinedDependencies::from_parts(afds, keys, n_attrs))
}

fn get_model(
    r: &mut Reader,
    schema: &Schema,
    ordering: AttributeOrdering,
) -> Result<SimilarityModel, PersistError> {
    let mut matrices = Vec::with_capacity(schema.arity());
    let mut bucket_specs = Vec::with_capacity(schema.arity());
    for _ in schema.attr_ids() {
        matrices.push(match r.u8()? {
            0 => None,
            1 => {
                let n_values = r.u32()? as usize;
                let mut dict = Dictionary::new();
                for _ in 0..n_values {
                    let value = r.string()?;
                    dict.intern(&value);
                }
                if dict.len() != n_values {
                    return Err(PersistError::Corrupted("duplicate dictionary value"));
                }
                let sims = r.f64s()?;
                Some(
                    ValueSimMatrix::from_parts(dict, sims)
                        .ok_or(PersistError::Corrupted("matrix shape mismatch"))?,
                )
            }
            _ => return Err(PersistError::Corrupted("unknown matrix tag")),
        });
        bucket_specs.push(match r.u8()? {
            0 => None,
            1 => {
                let origin = r.f64()?;
                let width = r.f64()?;
                if !(width > 0.0 && origin.is_finite()) {
                    return Err(PersistError::Corrupted("invalid bucket spec"));
                }
                Some(BucketSpec::new(origin, width))
            }
            _ => return Err(PersistError::Corrupted("unknown bucket tag")),
        });
    }
    SimilarityModel::from_parts(schema.clone(), ordering, matrices, bucket_specs)
        .ok_or(PersistError::Corrupted("model shape mismatch"))
}

impl AimqSystem {
    /// Serialize the trained system into a self-describing binary blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4096);
        out.put_slice(MAGIC);
        out.put_u32_le(VERSION);
        put_schema(&mut out, self.model().schema());
        put_mined(&mut out, self.mined());
        put_ordering(&mut out, self.ordering());
        put_model(&mut out, self.model());
        out
    }

    /// Reconstruct a system previously serialized with
    /// [`AimqSystem::to_bytes`]. Training timings are not preserved.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader { buf: bytes };
        r.need(4)?;
        let mut magic = [0u8; 4];
        r.buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let schema = get_schema(&mut r)?;
        let mined = get_mined(&mut r)?;
        let ordering = get_ordering(&mut r, &schema)?;
        let model = get_model(&mut r, &schema, ordering.clone())?;
        Ok(AimqSystem::from_parts(mined, ordering, model))
    }

    /// Save to a file (convenience wrapper over [`AimqSystem::to_bytes`]).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Load from a file saved by [`AimqSystem::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineConfig, TrainConfig};
    use aimq_catalog::{ImpreciseQuery, Value};
    use aimq_data::CarDb;
    use aimq_storage::InMemoryWebDb;

    fn trained() -> (InMemoryWebDb, AimqSystem) {
        let db = InMemoryWebDb::new(CarDb::generate(1500, 5));
        let sample = db.relation().random_sample(600, 1);
        let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
        (db, system)
    }

    #[test]
    fn round_trip_preserves_mined_structures() {
        let (_, system) = trained();
        let restored = AimqSystem::from_bytes(&system.to_bytes()).unwrap();

        assert_eq!(system.mined().afds(), restored.mined().afds());
        assert_eq!(system.mined().keys(), restored.mined().keys());
        assert_eq!(
            system.ordering().relaxation_order(),
            restored.ordering().relaxation_order()
        );
        for attr in system.model().schema().attr_ids() {
            assert_eq!(
                system.ordering().importance(attr),
                restored.ordering().importance(attr)
            );
            assert_eq!(
                system.model().bucket_spec(attr),
                restored.model().bucket_spec(attr)
            );
        }
    }

    #[test]
    fn round_trip_preserves_similarities() {
        let (_, system) = trained();
        let restored = AimqSystem::from_bytes(&system.to_bytes()).unwrap();
        let schema = system.model().schema().clone();
        let model_attr = schema.attr_id("Model").unwrap();
        let (orig, rest) = (
            system.model().matrix(model_attr).unwrap(),
            restored.model().matrix(model_attr).unwrap(),
        );
        assert_eq!(orig.values(), rest.values());
        assert_eq!(orig.raw_sims(), rest.raw_sims());
    }

    #[test]
    fn restored_system_answers_identically() {
        let (db, system) = trained();
        let restored = AimqSystem::from_bytes(&system.to_bytes()).unwrap();
        let schema = db.relation().schema().clone();
        let query = ImpreciseQuery::builder(&schema)
            .like("Model", Value::cat("Camry"))
            .unwrap()
            .like("Price", Value::num(9000.0))
            .unwrap()
            .build()
            .unwrap();
        let config = EngineConfig {
            t_sim: 0.3,
            ..EngineConfig::default()
        };
        let a = system.answer(&db, &query, &config);
        let b = restored.answer(&db, &query, &config);
        assert_eq!(a.answers.len(), b.answers.len());
        for (x, y) in a.answers.iter().zip(&b.answers) {
            assert_eq!(x.tuple, y.tuple);
            assert!((x.similarity - y.similarity).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_garbage_and_wrong_versions() {
        assert_eq!(
            AimqSystem::from_bytes(b"not a model").unwrap_err(),
            PersistError::BadMagic
        );
        let mut bytes = MAGIC.to_vec();
        bytes.put_u32_le(999);
        assert_eq!(
            AimqSystem::from_bytes(&bytes).unwrap_err(),
            PersistError::UnsupportedVersion(999)
        );
        assert_eq!(
            AimqSystem::from_bytes(b"AI").unwrap_err(),
            PersistError::Truncated
        );
    }

    #[test]
    fn truncated_input_is_detected() {
        let (_, system) = trained();
        let bytes = system.to_bytes();
        for cut in [0, 3, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = AimqSystem::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated | PersistError::BadMagic | PersistError::BadString
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn save_and_load_files() {
        let (_, system) = trained();
        let path = std::env::temp_dir().join(format!("aimq_model_{}.bin", std::process::id()));
        system.save(&path).unwrap();
        let restored = AimqSystem::load(&path).unwrap();
        assert_eq!(system.mined().afds(), restored.mined().afds());
        if let Err(err) = std::fs::remove_file(&path) {
            if err.kind() != std::io::ErrorKind::NotFound {
                eprintln!("warning: failed to remove {}: {err}", path.display());
            }
        }
    }
}
