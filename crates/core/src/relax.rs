use aimq_afd::{combinations_in_order, AttributeOrdering};
use aimq_catalog::{AttrId, SelectionQuery};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One planned relaxation probe: the attributes whose constraints are
/// dropped simultaneously, and the relaxation *level* the strategy
/// assigns the step.
///
/// For the paper's strategies the level is simply the step size (level 1
/// drops one attribute, level 2 drops pairs, ...), but the two are not the
/// same concept: a strategy may revisit a single-attribute relaxation at a
/// deeper level of an escalation schedule. Abandonment accounting
/// (`DegradationReport::levels_abandoned`) follows the strategy-assigned
/// level, never the step size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelaxationStep {
    /// Attributes to drop simultaneously.
    pub attrs: Vec<AttrId>,
    /// The strategy's level for this step (1-based).
    pub level: usize,
}

impl RelaxationStep {
    /// A step under the paper's default level structure: the level is the
    /// number of attributes relaxed at once.
    pub fn of(attrs: Vec<AttrId>) -> Self {
        let level = attrs.len();
        RelaxationStep { attrs, level }
    }
}

/// One entry of a compiled probe plan: a [`RelaxationStep`] paired with
/// the canonical [`SelectionQuery`] the engine will issue for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedProbe {
    /// The relaxation step this probe realizes.
    pub step: RelaxationStep,
    /// The canonicalized relaxed query. May be *empty* (every predicate
    /// dropped); the engine skips empty probes, but they are kept here so
    /// plan indices line up 1:1 with the strategy's steps.
    pub query: SelectionQuery,
}

/// Compile a strategy's plan into the concrete query sequence Algorithm 1
/// will issue for one base tuple: each step's attributes are dropped from
/// `tuple_query` and the result canonicalized (the memo/cache key form).
///
/// This is the whole-plan view the shared-subexpression executor
/// (`aimq-storage`'s `PlanExecutor`, reached via
/// `WebDatabase::try_query_plan`) consumes: handing it the full ordered
/// list instead of one query at a time is what lets the common base
/// intersection be evaluated once per plan.
pub fn compile_probes(tuple_query: &SelectionQuery, plan: &[RelaxationStep]) -> Vec<PlannedProbe> {
    plan.iter()
        .map(|step| PlannedProbe {
            step: step.clone(),
            query: tuple_query.relax(&step.attrs).canonicalize(),
        })
        .collect()
}

/// A query-relaxation strategy: given the bound attributes of a fully
/// bound tuple query, produce the ordered sequence of attribute subsets
/// whose constraints should be dropped, level by level (all 1-attribute
/// relaxations first, then pairs, ...).
///
/// Strategies may be stateful (`RandomRelax` draws a fresh random order
/// per base tuple), hence `&mut self`.
pub trait RelaxationStrategy {
    /// Relaxation steps for a tuple query binding `attrs`, up to subsets
    /// of `max_level` attributes. Each step is a set of attributes to
    /// drop *simultaneously*.
    fn steps(&mut self, attrs: &[AttrId], max_level: usize) -> Vec<Vec<AttrId>>;

    /// The annotated probe plan the engine executes: every step from
    /// [`RelaxationStrategy::steps`] plus the level the strategy assigns
    /// it. The default derives the level from the step size (the paper's
    /// definition); strategies with their own level structure override
    /// this so the engine's `levels_abandoned` accounting follows the
    /// strategy's levels rather than equating level with size.
    fn plan(&mut self, attrs: &[AttrId], max_level: usize) -> Vec<RelaxationStep> {
        self.steps(attrs, max_level)
            .into_iter()
            .map(RelaxationStep::of)
            .collect()
    }

    /// Human-readable name for reports ("GuidedRelax" / "RandomRelax").
    fn name(&self) -> &'static str;
}

/// The paper's **GuidedRelax**: relax in the AFD-derived importance order
/// (least important attribute first), extending to multi-attribute sets by
/// the greedy combination pattern of Section 4.
#[derive(Debug, Clone)]
pub struct GuidedRelax {
    ordering: AttributeOrdering,
}

impl GuidedRelax {
    /// Build from a mined attribute ordering.
    pub fn new(ordering: AttributeOrdering) -> Self {
        GuidedRelax { ordering }
    }

    /// The underlying ordering.
    pub fn ordering(&self) -> &AttributeOrdering {
        &self.ordering
    }
}

impl RelaxationStrategy for GuidedRelax {
    fn steps(&mut self, attrs: &[AttrId], max_level: usize) -> Vec<Vec<AttrId>> {
        // Restrict the global relaxation order to the attributes actually
        // bound by this tuple query, preserving relative positions.
        let order: Vec<AttrId> = self
            .ordering
            .relaxation_order()
            .iter()
            .copied()
            .filter(|a| attrs.contains(a))
            .collect();
        levels(&order, max_level)
    }

    fn name(&self) -> &'static str {
        "GuidedRelax"
    }
}

/// The paper's **RandomRelax** strawman: "mimics the random process by
/// which users would relax queries by arbitrarily picking attributes to
/// relax" (Section 6.1).
///
/// It issues the same *set* of relaxations as `GuidedRelax` (every proper
/// subset of up to `max_level` attributes) but in a uniformly random
/// order with **no level discipline** — a user arbitrarily relaxing
/// constraints may well drop three important attributes before trying the
/// gentlest single-attribute relaxation. Under early termination this is
/// exactly what makes RandomRelax extract hundreds of tuples per relevant
/// answer at high similarity thresholds (the paper's Figure 7) while
/// GuidedRelax's least-important-first order stays cheap (Figure 6).
#[derive(Debug)]
pub struct RandomRelax {
    rng: rand::rngs::StdRng,
}

impl RandomRelax {
    /// Build with a seed (experiments must be reproducible).
    pub fn new(seed: u64) -> Self {
        RandomRelax {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl RelaxationStrategy for RandomRelax {
    fn steps(&mut self, attrs: &[AttrId], max_level: usize) -> Vec<Vec<AttrId>> {
        let mut order: Vec<AttrId> = attrs.to_vec();
        order.shuffle(&mut self.rng);
        let mut steps = levels(&order, max_level);
        steps.shuffle(&mut self.rng);
        steps
    }

    fn name(&self) -> &'static str {
        "RandomRelax"
    }
}

/// Shared level expansion: don't relax *every* bound attribute at once
/// (that step would match the whole database), so the last level is
/// capped at `len - 1` unless only one attribute is bound.
fn levels(order: &[AttrId], max_level: usize) -> Vec<Vec<AttrId>> {
    let cap = if order.len() > 1 {
        max_level.min(order.len() - 1)
    } else {
        0
    };
    let mut steps = Vec::new();
    for level in 1..=cap {
        steps.extend(combinations_in_order(order, level));
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_afd::{AKey, Afd, AttrSet, MinedDependencies};
    use aimq_catalog::Schema;

    fn ordering() -> AttributeOrdering {
        let schema = Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .categorical("C")
            .categorical("D")
            .build()
            .unwrap();
        let mined = MinedDependencies::from_parts(
            vec![
                Afd {
                    lhs: AttrSet::singleton(AttrId(2)),
                    rhs: AttrId(0),
                    error: 0.1,
                },
                Afd {
                    lhs: AttrSet::singleton(AttrId(2)),
                    rhs: AttrId(1),
                    error: 0.3,
                },
            ],
            vec![AKey {
                attrs: AttrSet::from_attrs([AttrId(2), AttrId(3)]),
                error: 0.0,
            }],
            4,
        );
        AttributeOrdering::derive(&schema, &mined).unwrap()
        // Dependent: {A (0.9), B (0.7)} → order B, A (ascending weight);
        // Deciding: {C (1.6), D (0.0)} → order D, C.
        // Relaxation order: [B, A, D, C].
    }

    #[test]
    fn guided_relax_follows_mined_order() {
        let mut g = GuidedRelax::new(ordering());
        let attrs: Vec<AttrId> = (0..4).map(AttrId).collect();
        let steps = g.steps(&attrs, 1);
        assert_eq!(
            steps,
            vec![
                vec![AttrId(1)],
                vec![AttrId(0)],
                vec![AttrId(3)],
                vec![AttrId(2)],
            ]
        );
    }

    #[test]
    fn guided_relax_restricts_to_bound_attrs() {
        let mut g = GuidedRelax::new(ordering());
        let steps = g.steps(&[AttrId(0), AttrId(2)], 2);
        // Order restricted to {A, C} → [A, C]; max level capped at 1
        // (relaxing both would unconstrain the query).
        assert_eq!(steps, vec![vec![AttrId(0)], vec![AttrId(2)]]);
    }

    #[test]
    fn multi_level_structure() {
        let mut g = GuidedRelax::new(ordering());
        let attrs: Vec<AttrId> = (0..4).map(AttrId).collect();
        let steps = g.steps(&attrs, 2);
        assert_eq!(steps.len(), 4 + 6);
        assert!(steps[..4].iter().all(|s| s.len() == 1));
        assert!(steps[4..].iter().all(|s| s.len() == 2));
        // First pair is the two least-important attributes.
        assert_eq!(steps[4], vec![AttrId(1), AttrId(0)]);
    }

    #[test]
    fn never_relaxes_everything() {
        let mut g = GuidedRelax::new(ordering());
        let attrs: Vec<AttrId> = (0..4).map(AttrId).collect();
        let steps = g.steps(&attrs, 10);
        assert!(steps.iter().all(|s| s.len() < attrs.len()));
        // Single bound attribute: nothing to relax at all.
        assert!(g.steps(&[AttrId(0)], 3).is_empty());
    }

    #[test]
    fn random_relax_is_seeded_and_varies_per_call() {
        let attrs: Vec<AttrId> = (0..4).map(AttrId).collect();
        let mut r1 = RandomRelax::new(42);
        let mut r2 = RandomRelax::new(42);
        let s1a = r1.steps(&attrs, 1);
        let s2a = r2.steps(&attrs, 1);
        assert_eq!(s1a, s2a, "same seed, same first draw");
        // Across multiple draws, the order changes at least once.
        let mut varied = false;
        let mut prev = s1a;
        for _ in 0..20 {
            let next = r1.steps(&attrs, 1);
            if next != prev {
                varied = true;
            }
            prev = next;
        }
        assert!(varied, "RandomRelax should reshuffle per base tuple");
    }

    #[test]
    fn random_relax_covers_all_levels() {
        let attrs: Vec<AttrId> = (0..4).map(AttrId).collect();
        let mut r = RandomRelax::new(7);
        let steps = r.steps(&attrs, 3);
        assert_eq!(steps.len(), 4 + 6 + 4);
        // Every step is a subset of the bound attributes, no duplicates
        // within a step.
        for step in &steps {
            let mut s = step.clone();
            s.sort();
            s.dedup();
            assert_eq!(s.len(), step.len());
            assert!(step.iter().all(|a| attrs.contains(a)));
        }
    }

    #[test]
    fn default_plan_levels_are_step_sizes() {
        let mut g = GuidedRelax::new(ordering());
        let attrs: Vec<AttrId> = (0..4).map(AttrId).collect();
        let plan = g.plan(&attrs, 2);
        let steps = GuidedRelax::new(ordering()).steps(&attrs, 2);
        assert_eq!(plan.len(), steps.len());
        for (p, s) in plan.iter().zip(&steps) {
            assert_eq!(&p.attrs, s);
            assert_eq!(p.level, s.len());
        }
    }

    #[test]
    fn strategies_may_assign_levels_independent_of_size() {
        // A strategy whose level structure is an escalation schedule:
        // every step drops one attribute, but each pass is a deeper level.
        struct Escalating;
        impl RelaxationStrategy for Escalating {
            fn steps(&mut self, attrs: &[AttrId], _max_level: usize) -> Vec<Vec<AttrId>> {
                attrs.iter().map(|&a| vec![a]).collect()
            }
            fn plan(&mut self, attrs: &[AttrId], max_level: usize) -> Vec<RelaxationStep> {
                self.steps(attrs, max_level)
                    .into_iter()
                    .enumerate()
                    .map(|(pass, attrs)| RelaxationStep {
                        attrs,
                        level: pass + 1,
                    })
                    .collect()
            }
            fn name(&self) -> &'static str {
                "Escalating"
            }
        }
        let plan = Escalating.plan(&[AttrId(0), AttrId(1), AttrId(2)], 3);
        assert!(plan.iter().all(|s| s.attrs.len() == 1));
        let levels: Vec<usize> = plan.iter().map(|s| s.level).collect();
        assert_eq!(levels, vec![1, 2, 3], "same-size steps, distinct levels");
    }

    #[test]
    fn compile_probes_aligns_with_plan_and_canonicalizes() {
        use aimq_catalog::{Predicate, Value};
        let tuple_query = SelectionQuery::new(vec![
            Predicate::eq(AttrId(2), Value::cat("c")),
            Predicate::eq(AttrId(0), Value::cat("a")),
            Predicate::eq(AttrId(1), Value::cat("b")),
        ]);
        let plan = vec![
            RelaxationStep::of(vec![AttrId(1)]),
            RelaxationStep::of(vec![AttrId(0), AttrId(2)]),
            // Dropping everything leaves an empty query — kept in place.
            RelaxationStep::of(vec![AttrId(0), AttrId(1), AttrId(2)]),
        ];
        let probes = compile_probes(&tuple_query, &plan);
        assert_eq!(probes.len(), plan.len());
        for (probe, step) in probes.iter().zip(&plan) {
            assert_eq!(&probe.step, step);
            assert_eq!(probe.query, tuple_query.relax(&step.attrs).canonicalize());
            assert!(probe.query.is_canonical());
        }
        assert!(probes[2].query.predicates().is_empty());
        // The compiled query matches the engine's own relax+canonicalize
        // key form, so memo lookups and plan entries agree byte-for-byte.
        assert_eq!(probes[0].query.predicates().len(), 2);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(GuidedRelax::new(ordering()).name(), "GuidedRelax");
        assert_eq!(RandomRelax::new(1).name(), "RandomRelax");
    }
}
