#![warn(missing_docs)]

//! # aimq
//!
//! The **AIMQ** imprecise-query answering engine — the primary
//! contribution of *Answering Imprecise Queries over Autonomous Web
//! Databases* (Nambiar & Kambhampati, ICDE 2006).
//!
//! Given an imprecise query `Q` (e.g. `CarDB(Model like Camry, Price like
//! 10000)`) over a database that only answers boolean selections, AIMQ
//! (Algorithm 1 of the paper):
//!
//! 1. **maps** `Q` to a precise *base query* `Qpr` by tightening every
//!    `like` to `=`, generalizing along the mined attribute order until
//!    the answer set is non-empty (footnote 2);
//! 2. treats every tuple of the base set as a **fully bound selection
//!    query** and issues *relaxations* of it — dropping the least
//!    important attributes first, per the AFD-derived ordering
//!    ([`GuidedRelax`]) or at random ([`RandomRelax`], the paper's
//!    strawman);
//! 3. keeps every retrieved tuple whose similarity to its base tuple
//!    exceeds `Tsim`, then ranks the extended set by similarity to `Q`
//!    and returns the top-k.
//!
//! The four subsystems of the paper's Figure 1 map to crates:
//! Data Collector → `aimq-storage`'s prober, Dependency Miner →
//! `aimq-afd`, Similarity Miner → `aimq-sim`, Query Engine → this crate.
//! [`AimqSystem`] wires them together end to end (probe → mine → order →
//! estimate → answer).
//!
//! The engine is hardened for *fallible* autonomous sources: every
//! [`AnswerSet`] carries a [`DegradationReport`] saying which probes
//! failed or were abandoned and whether the answer is
//! [`Completeness::Full`], `Partial`, or `Empty`. See DESIGN.md, "Fault
//! model & degradation semantics".

mod base_query;
mod bind;
mod engine;
mod feedback;
mod persist;
mod relax;
mod system;

pub use base_query::derive_base_set;
pub use bind::{precise_query_for, tuple_query_for};
pub use engine::{
    AnswerSet, Completeness, DegradationReport, EngineConfig, Provenance, RankedAnswer, WorkStats,
};
pub use feedback::FeedbackTuner;
pub use persist::PersistError;
pub use relax::{
    compile_probes, GuidedRelax, PlannedProbe, RandomRelax, RelaxationStep, RelaxationStrategy,
};
pub use system::{AimqError, AimqSystem, TrainConfig};
