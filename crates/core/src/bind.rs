use aimq_catalog::{AttrId, Predicate, PredicateOp, SelectionQuery, Tuple, Value};
use aimq_sim::SimilarityModel;

/// Build the precise selection predicate(s) binding one attribute.
///
/// * categorical → `attr = v`;
/// * numeric → the **bucket band** containing `v`
///   (`attr >= lo AND attr < hi`), using the same bucketing the mining
///   pipeline applied. Exact numeric equality would almost never match on
///   continuous attributes like `Price`; real Web forms expose ranges, and
///   the paper's own mining views numerics as buckets (`Price 1k-5k`,
///   Table 1), so the band is the faithful executable reading of
///   "Price = 10000". Attributes without a spec (untrained) fall back to
///   exact equality.
fn bind_attr(model: &SimilarityModel, attr: AttrId, value: &Value, out: &mut Vec<Predicate>) {
    match value {
        Value::Num(v) => {
            if let Some(spec) = model.bucket_spec(attr) {
                let (lo, hi) = spec.range_of(spec.bucket_of(*v));
                out.push(Predicate {
                    attr,
                    op: PredicateOp::Ge,
                    value: Value::num(lo),
                });
                out.push(Predicate {
                    attr,
                    op: PredicateOp::Lt,
                    value: Value::num(hi),
                });
            } else {
                out.push(Predicate::eq(attr, value.clone()));
            }
        }
        Value::Cat(_) => out.push(Predicate::eq(attr, value.clone())),
        Value::Null => {}
    }
}

/// Precise query for a set of `(attribute, value)` bindings (the base
/// query `Qpr` of Algorithm 1, with numeric bands).
pub fn precise_query_for(model: &SimilarityModel, bindings: &[(AttrId, Value)]) -> SelectionQuery {
    let mut predicates = Vec::with_capacity(bindings.len());
    for (attr, value) in bindings {
        bind_attr(model, *attr, value, &mut predicates);
    }
    SelectionQuery::new(predicates)
}

/// A base-set tuple viewed as a fully bound selection query over `bound`
/// (Algorithm 1, step 3), with numeric bucket bands.
pub fn tuple_query_for(model: &SimilarityModel, tuple: &Tuple, bound: &[AttrId]) -> SelectionQuery {
    let mut predicates = Vec::with_capacity(bound.len());
    for &attr in bound {
        bind_attr(model, attr, tuple.value(attr), &mut predicates);
    }
    SelectionQuery::new(predicates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_afd::{AttributeOrdering, BucketConfig};
    use aimq_catalog::{BucketSpec, Schema};
    use aimq_sim::SimConfig;
    use aimq_storage::Relation;

    fn model() -> SimilarityModel {
        let schema = Schema::builder("R")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = [("Toyota", 9000.0), ("Honda", 14000.0)]
            .iter()
            .map(|&(m, p)| Tuple::new(&schema, vec![Value::cat(m), Value::num(p)]).unwrap())
            .collect();
        let rel = Relation::from_tuples(schema.clone(), &tuples).unwrap();
        let ordering = AttributeOrdering::uniform(&schema).unwrap();
        let bucket =
            BucketConfig::for_schema(&schema).with_spec(AttrId(1), BucketSpec::width(5000.0));
        SimilarityModel::build(&rel, &ordering, &SimConfig { bucket })
    }

    #[test]
    fn categorical_bindings_stay_equality() {
        let m = model();
        let q = precise_query_for(&m, &[(AttrId(0), Value::cat("Toyota"))]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.predicates()[0].op, PredicateOp::Eq);
    }

    #[test]
    fn numeric_bindings_become_bucket_bands() {
        let m = model();
        let q = precise_query_for(&m, &[(AttrId(1), Value::num(9000.0))]);
        assert_eq!(q.len(), 2);
        // 9000 with width-5000 buckets → [5000, 10000).
        let schema = m.schema().clone();
        let in_band = Tuple::new(&schema, vec![Value::cat("X"), Value::num(9999.0)]).unwrap();
        let below = Tuple::new(&schema, vec![Value::cat("X"), Value::num(4999.0)]).unwrap();
        let above = Tuple::new(&schema, vec![Value::cat("X"), Value::num(10000.0)]).unwrap();
        assert!(q.matches(&in_band));
        assert!(!q.matches(&below));
        assert!(!q.matches(&above));
    }

    #[test]
    fn tuple_query_matches_its_own_tuple() {
        let m = model();
        let schema = m.schema().clone();
        let t = Tuple::new(&schema, vec![Value::cat("Toyota"), Value::num(9000.0)]).unwrap();
        let q = tuple_query_for(&m, &t, &t.bound_attrs());
        assert!(q.matches(&t));
    }

    #[test]
    fn relaxing_a_banded_attr_drops_both_band_predicates() {
        let m = model();
        let schema = m.schema().clone();
        let t = Tuple::new(&schema, vec![Value::cat("Toyota"), Value::num(9000.0)]).unwrap();
        let q = tuple_query_for(&m, &t, &t.bound_attrs());
        let relaxed = q.relax(&[AttrId(1)]);
        assert_eq!(relaxed.bound_attrs(), vec![AttrId(0)]);
    }

    #[test]
    fn nulls_bind_nothing() {
        let m = model();
        let schema = m.schema().clone();
        let t = Tuple::new(&schema, vec![Value::Null, Value::num(9000.0)]).unwrap();
        let q = tuple_query_for(&m, &t, &[AttrId(0), AttrId(1)]);
        assert_eq!(q.bound_attrs(), vec![AttrId(1)]);
    }
}
