use aimq_catalog::{AttrId, BucketSpec, Domain, Schema};
use aimq_storage::{Relation, NULL_CODE};

/// Per-attribute bucketing policy for mining.
///
/// Categorical attributes are never bucketized (their dictionary codes are
/// used as-is). Numeric attributes are mapped to bucket indices: either via
/// an explicit [`BucketSpec`] or, by default, into `default_buckets`
/// equal-width buckets spanning the attribute's observed range.
#[derive(Debug, Clone)]
pub struct BucketConfig {
    specs: Vec<Option<BucketSpec>>,
    default_buckets: usize,
}

impl BucketConfig {
    /// Default policy for `schema`: 20 equal-width buckets per numeric
    /// attribute, derived from the data at encoding time.
    pub fn for_schema(schema: &Schema) -> Self {
        BucketConfig {
            specs: vec![None; schema.arity()],
            default_buckets: 20,
        }
    }

    /// Override the spec for one attribute.
    #[must_use]
    pub fn with_spec(mut self, attr: AttrId, spec: BucketSpec) -> Self {
        self.specs[attr.index()] = Some(spec); // aimq-lint: allow(indexing) -- schema-sized table; AttrId is minted by this schema
        self
    }

    /// Change the number of default equal-width buckets.
    #[must_use]
    pub fn with_default_buckets(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one bucket");
        self.default_buckets = n;
        self
    }

    /// The explicit spec for `attr`, if configured.
    pub fn spec(&self, attr: AttrId) -> Option<BucketSpec> {
        self.specs[attr.index()] // aimq-lint: allow(indexing) -- schema-sized table; AttrId is minted by this schema
    }
}

/// A relation re-encoded for mining: one dense `u32` code per (row,
/// attribute), with `NULL_CODE` marking nulls.
///
/// * categorical attribute → dictionary code (already dense);
/// * numeric attribute → bucket index (dense after remapping).
///
/// TANE partitions, and only they, consume this encoding; the similarity
/// miner re-derives its own bags because it needs bucket *labels* too.
#[derive(Debug, Clone)]
pub struct EncodedRelation {
    n_rows: usize,
    columns: Vec<Vec<u32>>,
    /// Number of distinct codes per column (excluding nulls).
    cardinalities: Vec<usize>,
    /// The bucket spec actually used per numeric attribute.
    used_specs: Vec<Option<BucketSpec>>,
}

impl EncodedRelation {
    /// Encode `relation` under `config`.
    pub fn encode(relation: &Relation, config: &BucketConfig) -> Self {
        let schema = relation.schema();
        let n_rows = relation.len();
        let mut columns = Vec::with_capacity(schema.arity());
        let mut cardinalities = Vec::with_capacity(schema.arity());
        let mut used_specs = vec![None; schema.arity()];

        for attr in schema.attr_ids() {
            let col = relation.column(attr);
            match schema.domain(attr) {
                Domain::Categorical => {
                    // aimq-lint: allow(panic) -- Relation construction pairs Categorical schema domains with dictionary-encoded columns
                    let codes = col.codes().expect("categorical column").to_vec();
                    let card = col.dictionary().map_or(0, aimq_storage::Dictionary::len);
                    columns.push(codes);
                    cardinalities.push(card);
                }
                Domain::Numeric => {
                    // aimq-lint: allow(panic) -- Relation construction pairs Numeric schema domains with f64 columns
                    let values = col.numbers().expect("numeric column");
                    let spec = config
                        .spec(attr)
                        .unwrap_or_else(|| default_spec(values, config.default_buckets));
                    // aimq-lint: allow(indexing) -- schema-sized table; AttrId is minted by this schema
                    used_specs[attr.index()] = Some(spec);
                    // Bucket, then re-map the sparse bucket indices to
                    // dense codes so partitions can use Vec-based tables.
                    // Codes are assigned in first-appearance row order; a
                    // BTreeMap keeps even the map's own iteration
                    // deterministic for the determinism lint.
                    let mut remap = std::collections::BTreeMap::new();
                    let codes: Vec<u32> = values
                        .iter()
                        .map(|&v| {
                            if v.is_nan() {
                                NULL_CODE
                            } else {
                                let bucket = spec.bucket_of(v);
                                let next = remap.len() as u32;
                                *remap.entry(bucket).or_insert(next)
                            }
                        })
                        .collect();
                    columns.push(codes);
                    cardinalities.push(remap.len());
                }
            }
        }

        EncodedRelation {
            n_rows,
            columns,
            cardinalities,
            used_specs,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.columns.len()
    }

    /// The dense code vector for `attr` (`NULL_CODE` marks nulls).
    pub fn codes(&self, attr: AttrId) -> &[u32] {
        &self.columns[attr.index()] // aimq-lint: allow(indexing) -- schema-sized table; AttrId is minted by this schema
    }

    /// Distinct non-null codes in `attr`'s column.
    pub fn cardinality(&self, attr: AttrId) -> usize {
        self.cardinalities[attr.index()] // aimq-lint: allow(indexing) -- schema-sized table; AttrId is minted by this schema
    }

    /// The bucket spec applied to a numeric attribute (None for
    /// categorical attributes).
    pub fn bucket_spec(&self, attr: AttrId) -> Option<BucketSpec> {
        self.used_specs[attr.index()] // aimq-lint: allow(indexing) -- schema-sized table; AttrId is minted by this schema
    }
}

/// Equal-width spec over the observed (finite) range of `values`.
fn default_spec(values: &[f64], buckets: usize) -> BucketSpec {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || lo == hi {
        // Degenerate column: single value or all null. One giant bucket.
        return BucketSpec::new(if lo.is_finite() { lo } else { 0.0 }, 1.0);
    }
    // Widen slightly so the max lands inside the last bucket, not beyond.
    let width = (hi - lo) / buckets as f64 * (1.0 + 1e-9);
    BucketSpec::new(lo, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::{Tuple, Value};

    fn relation() -> Relation {
        let schema = Schema::builder("R")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = [
            ("Toyota", 1000.0),
            ("Honda", 5500.0),
            ("Toyota", 1200.0),
            ("Ford", 9900.0),
        ]
        .iter()
        .map(|&(m, p)| Tuple::new(&schema, vec![Value::cat(m), Value::num(p)]).unwrap())
        .collect();
        Relation::from_tuples(schema, &tuples).unwrap()
    }

    #[test]
    fn categorical_codes_pass_through() {
        let r = relation();
        let enc = EncodedRelation::encode(&r, &BucketConfig::for_schema(r.schema()));
        assert_eq!(enc.n_rows(), 4);
        assert_eq!(enc.codes(AttrId(0))[0], enc.codes(AttrId(0))[2]); // Toyota twice
        assert_ne!(enc.codes(AttrId(0))[0], enc.codes(AttrId(0))[1]);
        assert_eq!(enc.cardinality(AttrId(0)), 3);
        assert!(enc.bucket_spec(AttrId(0)).is_none());
    }

    #[test]
    fn numeric_bucketing_with_explicit_spec() {
        let r = relation();
        let cfg =
            BucketConfig::for_schema(r.schema()).with_spec(AttrId(1), BucketSpec::width(5000.0));
        let enc = EncodedRelation::encode(&r, &cfg);
        let codes = enc.codes(AttrId(1));
        // 1000 and 1200 share bucket 0; 5500 and 9900 share bucket 1.
        assert_eq!(codes[0], codes[2]);
        assert_eq!(codes[1], codes[3]);
        assert_ne!(codes[0], codes[1]);
        assert_eq!(enc.cardinality(AttrId(1)), 2);
        assert_eq!(enc.bucket_spec(AttrId(1)), Some(BucketSpec::width(5000.0)));
    }

    #[test]
    fn default_equal_width_buckets_cover_range() {
        let r = relation();
        let cfg = BucketConfig::for_schema(r.schema()).with_default_buckets(2);
        let enc = EncodedRelation::encode(&r, &cfg);
        let codes = enc.codes(AttrId(1));
        // Range 1000..9900 split in 2: {1000, 1200, 5500-?}. Width ~4450:
        // bucket(1000)=0, bucket(1200)=0, bucket(5500)=1, bucket(9900)=1.
        assert_eq!(codes[0], codes[2]);
        assert_eq!(codes[1], codes[3]);
        assert_ne!(codes[0], codes[1]);
    }

    #[test]
    fn nulls_become_null_code() {
        let schema = Schema::builder("R")
            .categorical("A")
            .numeric("B")
            .build()
            .unwrap();
        let t1 = Tuple::new(&schema, vec![Value::Null, Value::num(1.0)]).unwrap();
        let t2 = Tuple::new(&schema, vec![Value::cat("x"), Value::Null]).unwrap();
        let r = Relation::from_tuples(schema, &[t1, t2]).unwrap();
        let enc = EncodedRelation::encode(&r, &BucketConfig::for_schema(r.schema()));
        assert_eq!(enc.codes(AttrId(0))[0], NULL_CODE);
        assert_eq!(enc.codes(AttrId(1))[1], NULL_CODE);
    }

    #[test]
    fn constant_numeric_column_is_single_bucket() {
        let schema = Schema::builder("R").numeric("B").build().unwrap();
        let tuples: Vec<Tuple> = (0..3)
            .map(|_| Tuple::new(&schema, vec![Value::num(7.0)]).unwrap())
            .collect();
        let r = Relation::from_tuples(schema, &tuples).unwrap();
        let enc = EncodedRelation::encode(&r, &BucketConfig::for_schema(r.schema()));
        assert_eq!(enc.cardinality(AttrId(0)), 1);
        assert!(enc.codes(AttrId(0)).iter().all(|&c| c == 0));
    }
}
