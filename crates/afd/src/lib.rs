#![warn(missing_docs)]

//! # aimq-afd
//!
//! Mining of **approximate functional dependencies** (AFDs) and
//! **approximate keys** (AKeys), plus the attribute-importance ordering
//! they induce — Section 4 of the AIMQ paper.
//!
//! The mining algorithm is a from-scratch implementation of **TANE**
//! (Huhtala, Kärkkäinen, Porkka & Toivonen, *Efficient Discovery of
//! Functional and Approximate Dependencies Using Partitions*, ICDE 1998),
//! the algorithm the paper itself uses:
//!
//! * tuples are grouped into *stripped partitions* (equivalence classes of
//!   size ≥ 2) per attribute set;
//! * partitions for larger sets are computed by the linear-time partition
//!   *product*;
//! * the error of a dependency is the **g3 measure** of Kivinen & Mannila:
//!   the minimum fraction of tuples to delete for the dependency to hold
//!   exactly;
//! * the search proceeds levelwise through the attribute-set lattice.
//!
//! On top of the mined dependencies, [`AttributeOrdering`] implements the
//! paper's **Algorithm 2**: the approximate key with the highest support
//! splits the schema into a *deciding* and a *dependent* group, each group
//! is sorted by its summed (support / antecedent-size) weight, and the
//! concatenation — dependent group first — is the relaxation order. The
//! derived [`Wimp`](AttributeOrdering::importance) weights feed both query
//! relaxation (`aimq` crate) and similarity estimation (`aimq-sim`).
//!
//! Numeric attributes are bucketized before mining (see
//! [`EncodedRelation`]); the paper's own supertuples (Table 1) show the
//! same treatment (`Price 1k-5k`, `Mileage 10k-15k`).

mod attrset;
mod encoding;
mod ordering;
mod partition;
mod tane;

pub use attrset::AttrSet;
pub use encoding::{BucketConfig, EncodedRelation};
pub use ordering::{combinations_in_order, AttributeOrdering, OrderingError, RelaxationStep};
pub use partition::Partition;
pub use tane::{AKey, Afd, MinedDependencies, TaneConfig};
