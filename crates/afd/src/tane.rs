use std::collections::BTreeMap;

use aimq_catalog::AttrId;
use serde::{Deserialize, Serialize};

use crate::{AttrSet, EncodedRelation, Partition};

/// An approximate functional dependency `lhs → rhs` with its g3 error.
///
/// `X → A` is an AFD iff `error(X → A) ≤ Terr` where the error is the
/// minimum fraction of tuples that must be removed from the relation for
/// the exact FD to hold (Kivinen & Mannila's g3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Afd {
    /// Antecedent attribute set (the paper's `A` in `support(A→k)`).
    pub lhs: AttrSet,
    /// Consequent attribute.
    pub rhs: AttrId,
    /// g3 error, in `[0, 1)`.
    pub error: f64,
}

impl Afd {
    /// `support = 1 − error`, the fraction of tuples conforming to the
    /// dependency. This is the quantity Algorithm 2 sums.
    pub fn support(&self) -> f64 {
        1.0 - self.error
    }
}

/// An approximate key with its g3 error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AKey {
    /// The key's attribute set.
    pub attrs: AttrSet,
    /// g3 error: minimum fraction of tuples to remove for `attrs` to be a
    /// real key.
    pub error: f64,
}

impl AKey {
    /// `support = 1 − error`.
    pub fn support(&self) -> f64 {
        1.0 - self.error
    }

    /// The paper's key-quality metric (Section 6.2, Figure 4): support
    /// divided by size, "designed to give preference to shorter keys".
    pub fn quality(&self) -> f64 {
        self.support() / self.attrs.len() as f64
    }
}

/// Configuration for the TANE levelwise search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaneConfig {
    /// `Terr`: dependencies and keys with g3 error at or below this are
    /// kept. The paper leaves the value unspecified; 0.15 works well on
    /// both CarDB and CensusDB.
    pub error_threshold: f64,
    /// Maximum antecedent size for mined AFDs. Algorithm 2 divides AFD
    /// support by antecedent size, so large antecedents contribute little;
    /// capping keeps the lattice tractable for wide schemas (CensusDB has
    /// 13 attributes).
    pub max_lhs_size: usize,
    /// Maximum attribute-set size for mined approximate keys.
    pub max_key_size: usize,
    /// When `true`, lattice nodes whose partition is already unique (exact
    /// superkeys) are not expanded. Their supersets are superkeys too and
    /// every AFD out of them holds exactly, so pruning them only removes
    /// redundant dependencies — at the cost of slightly different
    /// Algorithm-2 weight sums. Defaults to `false` for fidelity.
    pub prune_superkeys: bool,
}

impl Default for TaneConfig {
    fn default() -> Self {
        TaneConfig {
            error_threshold: 0.15,
            max_lhs_size: 3,
            max_key_size: 4,
            prune_superkeys: false,
        }
    }
}

/// The result of a TANE run: every AFD and approximate key within the
/// configured error threshold and size caps.
#[derive(Debug, Clone, Default)]
pub struct MinedDependencies {
    afds: Vec<Afd>,
    keys: Vec<AKey>,
    n_rows: usize,
    n_attrs: usize,
}

impl MinedDependencies {
    /// Mine `relation` under `config` — the paper's
    /// `GetAFDs(R, r)` / `GetAKeys(R, r)` pair (Algorithm 2, steps 1–2).
    pub fn mine(relation: &EncodedRelation, config: &TaneConfig) -> Self {
        let n_attrs = relation.n_attrs();
        let max_level = config
            .max_lhs_size
            .saturating_add(1)
            .max(config.max_key_size);
        let max_level = max_level.min(n_attrs);

        let mut afds = Vec::new();
        let mut keys = Vec::new();

        // Level 1: singleton partitions. Kept around for the whole run —
        // child partitions are computed as π_X · π_{a}.
        let singletons: Vec<Partition> = (0..n_attrs)
            .map(|i| Partition::from_codes(relation.codes(AttrId(i))))
            .collect();
        let mut current: BTreeMap<AttrSet, Partition> = singletons
            .iter()
            .enumerate()
            .map(|(i, p)| (AttrSet::singleton(AttrId(i)), p.clone()))
            .collect();

        for level in 1..=max_level {
            // Harvest keys at this level.
            if level <= config.max_key_size {
                for (&set, partition) in &current {
                    let error = partition.key_error();
                    if error <= config.error_threshold {
                        keys.push(AKey { attrs: set, error });
                    }
                }
            }

            if level == max_level {
                break;
            }

            // Generate the next level: X ∪ {a} for a beyond X's largest
            // attribute, combining the partitions of two level-`level`
            // parents.
            let mut next: BTreeMap<AttrSet, Partition> = BTreeMap::new();
            for (&set, partition) in &current {
                if config.prune_superkeys && partition.is_unique() {
                    continue;
                }
                let Some(max_attr) = set.iter().last() else {
                    continue; // lattice nodes are non-empty by construction
                };
                for (a, a_partition) in singletons.iter().enumerate().skip(max_attr.index() + 1) {
                    let attr = AttrId(a);
                    let child = set.with(attr);
                    if next.contains_key(&child) {
                        continue;
                    }
                    let child_partition = partition.product(a_partition);

                    // Harvest AFDs (X → a) and (child \ {x} → x) whose
                    // antecedents live at this level.
                    if level <= config.max_lhs_size {
                        for (rhs, lhs) in child.subsets_dropping_one() {
                            if let Some(lhs_partition) = current.get(&lhs) {
                                let error = lhs_partition.afd_error(&child_partition);
                                if error <= config.error_threshold {
                                    afds.push(Afd { lhs, rhs, error });
                                }
                            }
                        }
                    }
                    next.insert(child, child_partition);
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }

        // Sorted output order: the BTreeMap lattice already iterates in
        // AttrSet order, but sorting keeps `mine` and `from_parts`
        // byte-identical in what they promise.
        afds.sort_by_key(|a| (a.lhs, a.rhs));
        afds.dedup_by(|a, b| a.lhs == b.lhs && a.rhs == b.rhs);
        keys.sort_by_key(|a| a.attrs);

        MinedDependencies {
            afds,
            keys,
            n_rows: relation.n_rows(),
            n_attrs,
        }
    }

    /// Assemble from externally computed parts. Useful for tests and for
    /// loading persisted mining results; `mine` is the normal entry point.
    pub fn from_parts(mut afds: Vec<Afd>, mut keys: Vec<AKey>, n_attrs: usize) -> Self {
        afds.sort_by_key(|a| (a.lhs, a.rhs));
        keys.sort_by_key(|a| a.attrs);
        MinedDependencies {
            afds,
            keys,
            n_rows: 0,
            n_attrs,
        }
    }

    /// All mined AFDs, sorted by (lhs, rhs).
    pub fn afds(&self) -> &[Afd] {
        &self.afds
    }

    /// All mined approximate keys, sorted by attribute set.
    pub fn keys(&self) -> &[AKey] {
        &self.keys
    }

    /// Rows in the mined sample.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Attributes in the mined schema.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// The *minimal* AFDs: dependencies `X → A` such that no proper
    /// subset `Y ⊂ X` was also mined with `Y → A` — classic TANE output.
    /// Algorithm 2 sums over *all* mined AFDs, but minimal dependencies
    /// are what a human (or a query optimizer à la CORDS) wants to read.
    pub fn minimal_afds(&self) -> Vec<Afd> {
        self.afds
            .iter()
            .filter(|afd| {
                !self.afds.iter().any(|other| {
                    other.rhs == afd.rhs
                        && other.lhs != afd.lhs
                        && afd.lhs.is_superset_of(other.lhs)
                })
            })
            .copied()
            .collect()
    }

    /// AFDs whose consequent is `attr`.
    pub fn afds_into(&self, attr: AttrId) -> impl Iterator<Item = &Afd> {
        self.afds.iter().filter(move |afd| afd.rhs == attr)
    }

    /// AFDs whose antecedent contains `attr`.
    pub fn afds_from(&self, attr: AttrId) -> impl Iterator<Item = &Afd> {
        self.afds.iter().filter(move |afd| afd.lhs.contains(attr))
    }

    /// The best approximate key by the paper's quality metric
    /// (support / size), with deterministic tie-breaking toward smaller,
    /// lexicographically earlier sets.
    ///
    /// Note: Algorithm 2's step 3 literally asks for the key with the
    /// highest *support*, but support is monotone under supersets — the
    /// full attribute set is always a key with support 1 — so taken
    /// literally it would always select the widest key and leave the
    /// dependent group empty. Figure 4's quality metric ("preference to
    /// shorter keys") is what the authors describe actually picking the
    /// relaxation key, so we rank by quality.
    pub fn best_key(&self) -> Option<&AKey> {
        self.keys.iter().min_by(|a, b| {
            b.quality()
                .total_cmp(&a.quality())
                .then(a.attrs.len().cmp(&b.attrs.len()))
                .then(a.attrs.cmp(&b.attrs))
        })
    }

    /// The key with the highest raw support (Algorithm 2's literal
    /// reading), exposed for the ablation benchmark.
    pub fn best_key_by_support(&self) -> Option<&AKey> {
        self.keys.iter().min_by(|a, b| {
            b.support()
                .total_cmp(&a.support())
                .then(a.attrs.len().cmp(&b.attrs.len()))
                .then(a.attrs.cmp(&b.attrs))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BucketConfig;
    use aimq_catalog::{Schema, Tuple, Value};
    use aimq_storage::Relation;

    /// Small CarDB-like relation where Model → Make holds exactly and
    /// Model is (approximately) determined by nothing.
    fn car_relation() -> Relation {
        let schema = Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .categorical("Color")
            .build()
            .unwrap();
        let rows = [
            ("Toyota", "Camry", "White"),
            ("Toyota", "Camry", "Black"),
            ("Toyota", "Corolla", "White"),
            ("Honda", "Accord", "Black"),
            ("Honda", "Accord", "White"),
            ("Honda", "Civic", "Red"),
            ("Ford", "Focus", "Red"),
            ("Ford", "Focus", "White"),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(mk, md, c)| {
                Tuple::new(&schema, vec![Value::cat(mk), Value::cat(md), Value::cat(c)]).unwrap()
            })
            .collect();
        Relation::from_tuples(schema, &tuples).unwrap()
    }

    fn mine_cars(config: &TaneConfig) -> MinedDependencies {
        let r = car_relation();
        let enc = EncodedRelation::encode(&r, &BucketConfig::for_schema(r.schema()));
        MinedDependencies::mine(&enc, config)
    }

    #[test]
    fn exact_fd_model_determines_make() {
        let mined = mine_cars(&TaneConfig::default());
        let model_to_make = mined
            .afds()
            .iter()
            .find(|afd| afd.lhs == AttrSet::singleton(AttrId(1)) && afd.rhs == AttrId(0))
            .expect("Model → Make should be mined");
        assert_eq!(model_to_make.error, 0.0);
        assert_eq!(model_to_make.support(), 1.0);
    }

    #[test]
    fn make_does_not_determine_model_within_threshold() {
        let mined = mine_cars(&TaneConfig {
            error_threshold: 0.2,
            ..TaneConfig::default()
        });
        // Make → Model: Toyota splits 2-1, Honda 2-1, Ford 2-0 → remove 2
        // of 8 = 0.25 > 0.2, so it must NOT be mined.
        assert!(!mined
            .afds()
            .iter()
            .any(|afd| afd.lhs == AttrSet::singleton(AttrId(0)) && afd.rhs == AttrId(1)));
    }

    #[test]
    fn afd_errors_respect_threshold() {
        let mined = mine_cars(&TaneConfig {
            error_threshold: 0.3,
            ..TaneConfig::default()
        });
        assert!(!mined.afds().is_empty());
        assert!(mined.afds().iter().all(|afd| afd.error <= 0.3));
        assert!(mined.keys().iter().all(|k| k.error <= 0.3));
    }

    #[test]
    fn model_color_is_exact_key() {
        let mined = mine_cars(&TaneConfig::default());
        let mc = AttrSet::from_attrs([AttrId(1), AttrId(2)]);
        let key = mined
            .keys()
            .iter()
            .find(|k| k.attrs == mc)
            .expect("(Model, Color) is a key of the sample");
        assert_eq!(key.error, 0.0);
        assert!((key.quality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_single_attribute_key_in_sample() {
        let mined = mine_cars(&TaneConfig {
            error_threshold: 0.15,
            ..TaneConfig::default()
        });
        assert!(mined.keys().iter().all(|k| k.attrs.len() >= 2));
    }

    #[test]
    fn best_key_prefers_quality_over_raw_support() {
        let mined = mine_cars(&TaneConfig::default());
        let best = mined.best_key().unwrap();
        // All three attributes form a key with support 1 (quality 1/3);
        // (Model, Color) also has support 1 but quality 1/2, so it must
        // win.
        assert_eq!(best.attrs, AttrSet::from_attrs([AttrId(1), AttrId(2)]));
        // The literal highest-support rule is exposed separately and may
        // pick a bigger set; its support must be >= best-by-quality's.
        let by_support = mined.best_key_by_support().unwrap();
        assert!(by_support.support() >= best.support() - 1e-12);
    }

    #[test]
    fn loose_threshold_admits_single_attribute_key() {
        // With Terr = 0.5 even {Model} qualifies (error 3/8) and its
        // quality 0.625 beats every multi-attribute key.
        let mined = mine_cars(&TaneConfig {
            error_threshold: 0.5,
            ..TaneConfig::default()
        });
        let best = mined.best_key().unwrap();
        assert_eq!(best.attrs, AttrSet::singleton(AttrId(1)));
        assert!((best.quality() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn lhs_size_cap_is_respected() {
        let mined = mine_cars(&TaneConfig {
            max_lhs_size: 1,
            ..TaneConfig::default()
        });
        assert!(mined.afds().iter().all(|afd| afd.lhs.len() <= 1));
    }

    #[test]
    fn key_size_cap_is_respected() {
        let mined = mine_cars(&TaneConfig {
            max_key_size: 2,
            error_threshold: 0.9,
            ..TaneConfig::default()
        });
        assert!(mined.keys().iter().all(|k| k.attrs.len() <= 2));
    }

    #[test]
    fn prune_superkeys_only_drops_redundant_afds() {
        let full = mine_cars(&TaneConfig {
            error_threshold: 0.2,
            prune_superkeys: false,
            ..TaneConfig::default()
        });
        let pruned = mine_cars(&TaneConfig {
            error_threshold: 0.2,
            prune_superkeys: true,
            ..TaneConfig::default()
        });
        // Every pruned AFD appears in the full set with the same error.
        for afd in pruned.afds() {
            assert!(full.afds().iter().any(|f| f == afd));
        }
        assert!(pruned.afds().len() <= full.afds().len());
    }

    #[test]
    fn minimal_afds_filter_out_augmented_dependencies() {
        let mined = mine_cars(&TaneConfig {
            error_threshold: 0.2,
            ..TaneConfig::default()
        });
        let minimal = mined.minimal_afds();
        assert!(!minimal.is_empty());
        assert!(minimal.len() <= mined.afds().len());
        // Model → Make is mined; its augmentations {Model, Color} → Make
        // etc. must not survive the minimality filter.
        let model = AttrSet::singleton(AttrId(1));
        assert!(minimal
            .iter()
            .any(|afd| afd.lhs == model && afd.rhs == AttrId(0)));
        assert!(!minimal.iter().any(|afd| {
            afd.rhs == AttrId(0) && afd.lhs != model && afd.lhs.is_superset_of(model)
        }));
        // Every minimal AFD has no mined proper-subset antecedent.
        for afd in &minimal {
            for other in mined.afds() {
                if other.rhs == afd.rhs && other.lhs != afd.lhs {
                    assert!(!afd.lhs.is_superset_of(other.lhs));
                }
            }
        }
    }

    #[test]
    fn deterministic_output_order() {
        let a = mine_cars(&TaneConfig::default());
        let b = mine_cars(&TaneConfig::default());
        assert_eq!(a.afds(), b.afds());
        assert_eq!(a.keys(), b.keys());
    }

    #[test]
    fn afds_into_and_from_filter_correctly() {
        let mined = mine_cars(&TaneConfig {
            error_threshold: 0.5,
            ..TaneConfig::default()
        });
        assert!(mined.afds_into(AttrId(0)).all(|afd| afd.rhs == AttrId(0)));
        assert!(mined
            .afds_from(AttrId(1))
            .all(|afd| afd.lhs.contains(AttrId(1))));
        let total: usize = (0..3).map(|i| mined.afds_into(AttrId(i)).count()).sum();
        assert_eq!(total, mined.afds().len());
    }

    #[test]
    fn empty_relation_mines_nothing() {
        let schema = Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .build()
            .unwrap();
        let r = Relation::from_tuples(schema, &[]).unwrap();
        let enc = EncodedRelation::encode(&r, &BucketConfig::for_schema(r.schema()));
        let mined = MinedDependencies::mine(&enc, &TaneConfig::default());
        // Every set is trivially a key of an empty relation (error 0) but
        // no AFD evidence exists; we accept keys, require no panic.
        assert!(mined.afds().iter().all(|afd| afd.error == 0.0));
        assert_eq!(mined.n_rows(), 0);
    }
}
