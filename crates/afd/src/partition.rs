use aimq_storage::{RowId, NULL_CODE};

/// A *stripped partition*: the equivalence classes (of size ≥ 2) induced on
/// the rows by an attribute set. Singleton classes are dropped — they can
/// never violate a dependency — which is the representation trick that
/// makes TANE fast (Huhtala et al., Section 4).
///
/// Null-valued rows are treated as pairwise distinct (each its own
/// singleton) and therefore never appear in any class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    n_rows: usize,
    classes: Vec<Vec<RowId>>,
}

impl Partition {
    /// Partition induced by a single encoded column: rows sharing a code
    /// form a class; `NULL_CODE` rows are singletons.
    pub fn from_codes(codes: &[u32]) -> Self {
        // Two passes: count class sizes, then fill. Codes are dense, so a
        // Vec keyed by code works as the grouping table.
        let max_code = codes
            .iter()
            .filter(|&&c| c != NULL_CODE)
            .max()
            .map_or(0, |&c| c as usize + 1);
        let mut counts = vec![0u32; max_code];
        for &c in codes {
            if c != NULL_CODE {
                counts[c as usize] += 1; // aimq-lint: allow(indexing) -- sized to the dictionary cardinality; codes are in-range by interning
            }
        }
        let mut groups: Vec<Vec<RowId>> = counts
            .iter()
            .map(|&n| Vec::with_capacity(if n >= 2 { n as usize } else { 0 }))
            .collect();
        for (row, &c) in codes.iter().enumerate() {
            // aimq-lint: allow(indexing) -- sized to the dictionary cardinality; codes are in-range by interning
            if c != NULL_CODE && counts[c as usize] >= 2 {
                groups[c as usize].push(row as RowId); // aimq-lint: allow(indexing) -- sized to the dictionary cardinality; codes are in-range by interning
            }
        }
        let classes = groups.into_iter().filter(|g| g.len() >= 2).collect();
        Partition {
            n_rows: codes.len(),
            classes,
        }
    }

    /// The single-class partition where all rows are equivalent — the
    /// partition of the empty attribute set.
    pub fn universal(n_rows: usize) -> Self {
        if n_rows < 2 {
            return Partition {
                n_rows,
                classes: Vec::new(),
            };
        }
        Partition {
            n_rows,
            classes: vec![(0..n_rows as RowId).collect()],
        }
    }

    /// Number of rows in the underlying relation.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The stripped classes.
    pub fn classes(&self) -> &[Vec<RowId>] {
        &self.classes
    }

    /// Number of stripped classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// `||π||`: number of rows appearing in stripped classes.
    pub fn row_count(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// `true` when the attribute set is an exact key (every class is a
    /// singleton, so the stripped partition is empty).
    pub fn is_unique(&self) -> bool {
        self.classes.is_empty()
    }

    /// TANE's linear-time **stripped product** `π_self · π_other`: the
    /// partition of the union of the two attribute sets.
    pub fn product(&self, other: &Partition) -> Partition {
        debug_assert_eq!(self.n_rows, other.n_rows);
        // `t[row]` = index of row's class in `self`, or NONE.
        const NONE: u32 = u32::MAX;
        let mut t = vec![NONE; self.n_rows];
        for (i, class) in self.classes.iter().enumerate() {
            for &row in class {
                t[row as usize] = i as u32; // aimq-lint: allow(indexing) -- row-indexed scratch sized to the relation; rows come from its own partitions
            }
        }
        let mut s: Vec<Vec<RowId>> = vec![Vec::new(); self.classes.len()];
        let mut out = Vec::new();
        for class in &other.classes {
            for &row in class {
                let i = t[row as usize]; // aimq-lint: allow(indexing) -- row-indexed scratch sized to the relation; rows come from its own partitions
                if i != NONE {
                    s[i as usize].push(row); // aimq-lint: allow(indexing) -- row-indexed scratch sized to the relation; rows come from its own partitions
                }
            }
            for &row in class {
                let i = t[row as usize]; // aimq-lint: allow(indexing) -- row-indexed scratch sized to the relation; rows come from its own partitions
                if i != NONE {
                    let bucket = &mut s[i as usize]; // aimq-lint: allow(indexing) -- row-indexed scratch sized to the relation; rows come from its own partitions
                    if bucket.len() >= 2 {
                        out.push(std::mem::take(bucket));
                    } else {
                        bucket.clear();
                    }
                }
            }
        }
        Partition {
            n_rows: self.n_rows,
            classes: out,
        }
    }

    /// g3 error of this attribute set **as a key**: the minimum fraction
    /// of rows to delete so that no two rows agree on the set. With
    /// stripped partitions this is `Σ (|c| − 1) / n`.
    pub fn key_error(&self) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let excess: usize = self.classes.iter().map(|c| c.len() - 1).sum();
        excess as f64 / self.n_rows as f64
    }

    /// g1 error of this attribute set **as a key**: the fraction of
    /// *ordered tuple pairs* that agree on the set,
    /// `g1(X) = Σ_c |c|·(|c|−1) / n²` — the pair-counting alternative to
    /// [`key_error`](Self::key_error) from Kivinen & Mannila.
    pub fn key_error_g1(&self) -> f64 {
        if self.n_rows < 2 {
            return 0.0;
        }
        let agreeing: u64 = self
            .classes
            .iter()
            .map(|c| {
                let s = c.len() as u64;
                s * (s - 1)
            })
            .sum();
        agreeing as f64 / (self.n_rows as u64 * self.n_rows as u64) as f64
    }

    /// g1 error of the AFD `X → A`: the fraction of ordered tuple pairs
    /// that agree on `X` but disagree on `A`,
    /// `g1(X→A) = Σ_{c∈π_X} (|c|² − Σ_i s_i²) / n²` where the `s_i` are
    /// the sizes of `c`'s subclasses under `π_{X∪A}`.
    pub fn afd_error_g1(&self, refined: &Partition) -> f64 {
        debug_assert_eq!(self.n_rows, refined.n_rows);
        if self.n_rows < 2 {
            return 0.0;
        }
        // subclass_size[row] = |row's class in refined| (1 if singleton);
        // summing it over the rows of a class c yields Σ_i s_i².
        let mut subclass_size = vec![1u64; self.n_rows];
        for class in &refined.classes {
            let len = class.len() as u64;
            for &row in class {
                subclass_size[row as usize] = len; // aimq-lint: allow(indexing) -- row-indexed scratch sized to the relation; rows come from its own partitions
            }
        }
        let mut violating: u64 = 0;
        for class in &self.classes {
            let size = class.len() as u64;
            let sum_sq: u64 = class.iter().map(|&row| subclass_size[row as usize]).sum(); // aimq-lint: allow(indexing) -- row-indexed scratch sized to the relation; rows come from its own partitions
            violating += size * size - sum_sq;
        }
        violating as f64 / (self.n_rows as u64 * self.n_rows as u64) as f64
    }

    /// g3 error of the AFD `X → A`, where `self` is `π_X` and `refined` is
    /// `π_{X∪A}`: the minimum fraction of rows to delete so the FD holds
    /// exactly. For each class `c` of `π_X` the survivors are the largest
    /// `π_{X∪A}`-subclass inside `c`; everything else must go.
    pub fn afd_error(&self, refined: &Partition) -> f64 {
        debug_assert_eq!(self.n_rows, refined.n_rows);
        if self.n_rows == 0 {
            return 0.0;
        }
        // subclass_size[row] = |row's class in refined| (1 if singleton).
        let mut subclass_size = vec![1u32; self.n_rows];
        for class in &refined.classes {
            let len = class.len() as u32;
            for &row in class {
                subclass_size[row as usize] = len; // aimq-lint: allow(indexing) -- row-indexed scratch sized to the relation; rows come from its own partitions
            }
        }
        let mut removed = 0usize;
        for class in &self.classes {
            let max_sub = class
                .iter()
                .map(|&row| subclass_size[row as usize]) // aimq-lint: allow(indexing) -- row-indexed scratch sized to the relation; rows come from its own partitions
                .max()
                .unwrap_or(1) as usize;
            removed += class.len() - max_sub;
        }
        removed as f64 / self.n_rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_codes_strips_singletons() {
        //                rows: 0  1  2  3  4  5
        let p = Partition::from_codes(&[1, 0, 1, 2, 0, 3]);
        assert_eq!(p.n_rows(), 6);
        assert_eq!(p.class_count(), 2); // {0,2} and {1,4}
        assert_eq!(p.row_count(), 4);
        let mut sizes: Vec<usize> = p.classes().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn nulls_are_singletons() {
        let p = Partition::from_codes(&[NULL_CODE, NULL_CODE, 0, 0]);
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.classes()[0], vec![2, 3]);
    }

    #[test]
    fn unique_column_gives_empty_partition() {
        let p = Partition::from_codes(&[0, 1, 2, 3]);
        assert!(p.is_unique());
        assert_eq!(p.key_error(), 0.0);
    }

    #[test]
    fn universal_partition() {
        let p = Partition::universal(4);
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.row_count(), 4);
        // As a "key", the empty set over 4 rows needs 3 deletions.
        assert!((p.key_error() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn key_error_counts_excess_rows() {
        // codes: three rows of "a", two of "b", one of "c" → remove 2+1=3 of 6.
        let p = Partition::from_codes(&[0, 0, 0, 1, 1, 2]);
        assert!((p.key_error() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn product_equals_pairwise_grouping() {
        let x = [0u32, 0, 0, 1, 1, 2];
        let y = [0u32, 0, 1, 1, 1, 1];
        let px = Partition::from_codes(&x);
        let py = Partition::from_codes(&y);
        let pxy = px.product(&py);
        // Pairs: (0,0),(0,0),(0,1),(1,1),(1,1),(2,1) → classes {0,1}, {3,4}.
        assert_eq!(pxy.class_count(), 2);
        let mut classes: Vec<Vec<RowId>> = pxy.classes().to_vec();
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        assert_eq!(classes, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn product_is_commutative_up_to_reordering() {
        let x = [0u32, 1, 0, 1, 0, 2, 2];
        let y = [0u32, 0, 0, 1, 1, 1, 0];
        let a = Partition::from_codes(&x).product(&Partition::from_codes(&y));
        let b = Partition::from_codes(&y).product(&Partition::from_codes(&x));
        let norm = |p: &Partition| {
            let mut cs: Vec<Vec<RowId>> = p.classes().to_vec();
            for c in &mut cs {
                c.sort_unstable();
            }
            cs.sort();
            cs
        };
        assert_eq!(norm(&a), norm(&b));
    }

    #[test]
    fn afd_error_exact_dependency_is_zero() {
        // X = Model, A = Make, Model → Make holds exactly.
        let model = [0u32, 0, 1, 1, 2];
        let make = [0u32, 0, 0, 0, 1];
        let px = Partition::from_codes(&model);
        let pxa = px.product(&Partition::from_codes(&make));
        assert_eq!(px.afd_error(&pxa), 0.0);
    }

    #[test]
    fn afd_error_counts_minority_rows() {
        // X groups rows {0,1,2,3}; A splits them 3-vs-1 → remove 1 of 4.
        let x = [0u32, 0, 0, 0];
        let a = [0u32, 0, 0, 1];
        let px = Partition::from_codes(&x);
        let pxa = px.product(&Partition::from_codes(&a));
        assert!((px.afd_error(&pxa) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn afd_error_with_all_singleton_subclasses() {
        // X groups all 4 rows; A makes every row distinct → keep 1, remove 3.
        let x = [0u32, 0, 0, 0];
        let a = [0u32, 1, 2, 3];
        let px = Partition::from_codes(&x);
        let pxa = px.product(&Partition::from_codes(&a));
        assert!((px.afd_error(&pxa) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn g1_key_error_counts_agreeing_pairs() {
        // codes: {0,0,0,1,1,2}: agreeing ordered pairs = 3·2 + 2·1 = 8 of 36.
        let p = Partition::from_codes(&[0, 0, 0, 1, 1, 2]);
        assert!((p.key_error_g1() - 8.0 / 36.0).abs() < 1e-12);
        // Unique column: no agreeing pairs.
        assert_eq!(Partition::from_codes(&[0, 1, 2]).key_error_g1(), 0.0);
    }

    #[test]
    fn g1_afd_error_counts_violating_pairs() {
        // X groups all 4 rows; A splits 3-1 → violating ordered pairs:
        // 16 − (9 + 1) = 6 of 16.
        let x = [0u32, 0, 0, 0];
        let a = [0u32, 0, 0, 1];
        let px = Partition::from_codes(&x);
        let pxa = px.product(&Partition::from_codes(&a));
        assert!((px.afd_error_g1(&pxa) - 6.0 / 16.0).abs() < 1e-12);
        // Exact FD → zero violating pairs.
        let model = [0u32, 0, 1, 1];
        let make = [0u32, 0, 1, 1];
        let pm = Partition::from_codes(&model);
        let pma = pm.product(&Partition::from_codes(&make));
        assert_eq!(pm.afd_error_g1(&pma), 0.0);
    }

    /// Brute-force g1 for X→A from raw code columns (ordered pairs).
    fn brute_g1(x: &[u32], a: &[u32]) -> f64 {
        let n = a.len();
        if n < 2 {
            return 0.0;
        }
        let mut violating = 0u64;
        for i in 0..n {
            for j in 0..n {
                if i != j
                    && x[i] != NULL_CODE
                    && x[i] == x[j]
                    && (a[i] != a[j] || a[i] == NULL_CODE)
                {
                    violating += 1;
                }
            }
        }
        violating as f64 / (n * n) as f64
    }

    /// Brute-force g3 for X→A from raw code columns.
    fn brute_g3(x: &[Vec<u32>], a: &[u32]) -> f64 {
        use std::collections::HashMap;
        let n = a.len();
        if n == 0 {
            return 0.0;
        }
        // group rows by X-projection (nulls distinct per row)
        let mut groups: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
        for row in 0..n {
            let mut key: Vec<u64> = Vec::with_capacity(x.len());
            let mut has_null = false;
            for col in x {
                if col[row] == NULL_CODE {
                    has_null = true;
                    break;
                }
                key.push(u64::from(col[row]));
            }
            if has_null {
                // unique key per row
                key = vec![u64::MAX, row as u64];
            }
            groups.entry(key).or_default().push(row);
        }
        let mut removed = 0usize;
        for rows in groups.values() {
            let mut counts: HashMap<u64, usize> = HashMap::new();
            for &row in rows {
                let v = if a[row] == NULL_CODE {
                    // nulls pairwise distinct
                    u64::from(u32::MAX) + 1 + row as u64
                } else {
                    u64::from(a[row])
                };
                *counts.entry(v).or_default() += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            removed += rows.len() - max;
        }
        removed as f64 / n as f64
    }

    proptest! {
        #[test]
        fn afd_error_matches_brute_force(
            rows in prop::collection::vec((0u32..4, 0u32..4, 0u32..3), 1..60)
        ) {
            let x1: Vec<u32> = rows.iter().map(|r| r.0).collect();
            let x2: Vec<u32> = rows.iter().map(|r| r.1).collect();
            let a: Vec<u32> = rows.iter().map(|r| r.2).collect();
            let px = Partition::from_codes(&x1).product(&Partition::from_codes(&x2));
            let pa = Partition::from_codes(&a);
            let pxa = px.product(&pa);
            let fast = px.afd_error(&pxa);
            let brute = brute_g3(&[x1, x2], &a);
            prop_assert!((fast - brute).abs() < 1e-9, "fast={fast} brute={brute}");
        }

        #[test]
        fn g1_afd_error_matches_brute_force(
            rows in prop::collection::vec((0u32..4, 0u32..3), 2..60)
        ) {
            let x: Vec<u32> = rows.iter().map(|r| r.0).collect();
            let a: Vec<u32> = rows.iter().map(|r| r.1).collect();
            let px = Partition::from_codes(&x);
            let pxa = px.product(&Partition::from_codes(&a));
            let fast = px.afd_error_g1(&pxa);
            let brute = brute_g1(&x, &a);
            prop_assert!((fast - brute).abs() < 1e-9, "fast={fast} brute={brute}");
        }

        #[test]
        fn g1_is_zero_iff_g3_is_zero(
            rows in prop::collection::vec((0u32..4, 0u32..3), 2..60)
        ) {
            let x: Vec<u32> = rows.iter().map(|r| r.0).collect();
            let a: Vec<u32> = rows.iter().map(|r| r.1).collect();
            let px = Partition::from_codes(&x);
            let pxa = px.product(&Partition::from_codes(&a));
            prop_assert_eq!(px.afd_error(&pxa) == 0.0, px.afd_error_g1(&pxa) == 0.0);
        }

        #[test]
        fn key_error_matches_distinct_count(codes in prop::collection::vec(0u32..6, 0..80)) {
            let p = Partition::from_codes(&codes);
            let distinct: std::collections::HashSet<u32> = codes.iter().copied().collect();
            let expected = if codes.is_empty() {
                0.0
            } else {
                (codes.len() - distinct.len()) as f64 / codes.len() as f64
            };
            prop_assert!((p.key_error() - expected).abs() < 1e-9);
        }

        #[test]
        fn product_refines_both_operands(
            rows in prop::collection::vec((0u32..3, 0u32..3), 2..50)
        ) {
            let x: Vec<u32> = rows.iter().map(|r| r.0).collect();
            let y: Vec<u32> = rows.iter().map(|r| r.1).collect();
            let px = Partition::from_codes(&x);
            let py = Partition::from_codes(&y);
            let pxy = px.product(&py);
            // every class of the product is contained in a class of each operand
            for class in pxy.classes() {
                let x0 = x[class[0] as usize];
                let y0 = y[class[0] as usize];
                for &row in class {
                    prop_assert_eq!(x[row as usize], x0);
                    prop_assert_eq!(y[row as usize], y0);
                }
            }
        }
    }
}
