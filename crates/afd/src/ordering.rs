use std::fmt;

use aimq_catalog::{AttrId, Schema};
use serde::{Deserialize, Serialize};

use crate::{AttrSet, MinedDependencies};

/// Errors from building an [`AttributeOrdering`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderingError {
    /// The schema has no attributes to order.
    EmptySchema,
    /// The mined dependencies were computed over a different arity than
    /// the schema.
    ArityMismatch {
        /// The schema's arity.
        schema: usize,
        /// The arity the dependencies were mined over.
        mined: usize,
    },
}

impl fmt::Display for OrderingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingError::EmptySchema => write!(f, "cannot order an empty schema"),
            OrderingError::ArityMismatch { schema, mined } => write!(
                f,
                "mined dependencies cover {mined} attributes but schema has {schema}"
            ),
        }
    }
}

impl std::error::Error for OrderingError {}

/// One step of the relaxation process: the set of attributes whose
/// constraints are dropped together. `level` is the number of attributes
/// relaxed (1 for single-attribute relaxation, 2 for pairs, ...).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelaxationStep {
    /// Attributes to relax simultaneously, in relaxation-order position.
    pub attrs: Vec<AttrId>,
    /// Size of the relaxed set.
    pub level: usize,
}

/// The paper's **Algorithm 2**: a total importance order over the schema's
/// attributes, derived purely from mined AFDs and approximate keys.
///
/// Construction:
/// 1. the best approximate key `AK` splits the schema into the *deciding*
///    group (members of `AK`) and the *dependent* group (everything else);
/// 2. each deciding attribute `k` gets weight
///    `Wtdecides(k) = Σ support(A→k′)/size(A)` over mined AFDs whose
///    antecedent contains `k`;
/// 3. each dependent attribute `j` gets weight
///    `Wtdepends(j) = Σ support(A→j)/size(A)` over mined AFDs with
///    consequent `j`;
/// 4. both groups are sorted ascending by weight and concatenated,
///    dependent group first — so the first attribute in
///    [`relaxation_order`](Self::relaxation_order) is the least important
///    and gets relaxed first.
///
/// The importance weight of an attribute (the paper's `Wimp`) is
/// `RelaxOrder(k)/count(attrs) × Wt(k)/ΣWt(group)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeOrdering {
    schema: Schema,
    relax_order: Vec<AttrId>,
    importance: Vec<f64>,
    deciding: AttrSet,
    dependent: AttrSet,
    wt_decides: Vec<f64>,
    wt_depends: Vec<f64>,
}

impl AttributeOrdering {
    /// Run Algorithm 2 over mined dependencies, exactly as in the paper
    /// (no smoothing: attributes with no AFD evidence get weight 0).
    pub fn derive(schema: &Schema, mined: &MinedDependencies) -> Result<Self, OrderingError> {
        Self::derive_with_smoothing(schema, mined, 0.0)
    }

    /// Algorithm 2 with Laplace-smoothed weight shares:
    /// `share(k) = (Wt(k) + α) / (ΣWt + α·|group|)`.
    ///
    /// The paper's formula assigns `Wimp = 0` to any attribute that no
    /// mined AFD touches, which silently erases that attribute from every
    /// similarity computation. A small `α` (e.g. 0.1) keeps the mined
    /// ordering while letting evidence-free attributes contribute
    /// marginally; `α = 0` reproduces the paper exactly.
    pub fn derive_with_smoothing(
        schema: &Schema,
        mined: &MinedDependencies,
        alpha: f64,
    ) -> Result<Self, OrderingError> {
        let n = schema.arity();
        if n == 0 {
            return Err(OrderingError::EmptySchema);
        }
        if mined.n_attrs() != 0 && mined.n_attrs() != n {
            return Err(OrderingError::ArityMismatch {
                schema: n,
                mined: mined.n_attrs(),
            });
        }

        // Step 3-4: partition by the best approximate key. Without any
        // mined key every attribute is treated as dependent.
        let deciding = mined.best_key().map_or(AttrSet::EMPTY, |k| k.attrs);
        let dependent = AttrSet::from_attrs(schema.attr_ids()).difference(deciding);

        // Steps 5-10: weight accumulation.
        let mut wt_decides = vec![0.0; n];
        let mut wt_depends = vec![0.0; n];
        for afd in mined.afds() {
            let contribution = afd.support() / afd.lhs.len() as f64;
            wt_depends[afd.rhs.index()] += contribution; // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
            for a in afd.lhs.iter() {
                wt_decides[a.index()] += contribution; // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
            }
        }

        // Step 11: sort each group ascending by its weight; dependent
        // group relaxes first. Ties break on attribute id so the order is
        // deterministic.
        let sort_group = |set: AttrSet, weights: &[f64]| -> Vec<AttrId> {
            let mut attrs: Vec<AttrId> = set.iter().collect();
            attrs.sort_by(|&a, &b| {
                weights[a.index()] // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
                    .total_cmp(&weights[b.index()]) // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
                    .then(a.cmp(&b))
            });
            attrs
        };
        let mut relax_order = sort_group(dependent, &wt_depends);
        relax_order.extend(sort_group(deciding, &wt_decides));

        // Wimp(k) = RelaxOrder(k)/count × Wt(k)/ΣWt(group), with optional
        // Laplace smoothing and a uniform fallback when a group's weights
        // sum to zero (no AFDs touching it).
        let sum_decides: f64 = deciding.iter().map(|a| wt_decides[a.index()]).sum(); // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
        let sum_depends: f64 = dependent.iter().map(|a| wt_depends[a.index()]).sum(); // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
        let mut importance = vec![0.0; n];
        for (pos, &attr) in relax_order.iter().enumerate() {
            let relax_order_k = (pos + 1) as f64; // 1-based position
            let (wt, sum, group_len) = if deciding.contains(attr) {
                (wt_decides[attr.index()], sum_decides, deciding.len()) // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
            } else {
                (wt_depends[attr.index()], sum_depends, dependent.len()) // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
            };
            let smoothed_sum = sum + alpha * group_len as f64;
            let share = if smoothed_sum > 0.0 {
                (wt + alpha) / smoothed_sum
            } else if group_len > 0 {
                1.0 / group_len as f64
            } else {
                0.0
            };
            importance[attr.index()] = relax_order_k / n as f64 * share; // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
        }

        Ok(AttributeOrdering {
            schema: schema.clone(),
            relax_order,
            importance,
            deciding,
            dependent,
            wt_decides,
            wt_depends,
        })
    }

    /// A *query-driven* ordering, the alternative class of approaches the
    /// paper's conclusion contrasts with AIMQ's data-driven mining: "the
    /// importance of an attribute is decided by the frequency with which
    /// it appears in a user query" (Section 7, referring to the authors'
    /// earlier WIDM 2003 work).
    ///
    /// `query_log` is the multiset of bound-attribute sets of past
    /// queries. Importance is the attribute's binding frequency;
    /// relaxation order is ascending frequency (rarely-asked-for
    /// attributes are relaxed first). With an empty log this degenerates
    /// to [`AttributeOrdering::uniform`].
    pub fn from_query_log<'a, I>(schema: &Schema, query_log: I) -> Result<Self, OrderingError>
    where
        I: IntoIterator<Item = &'a [AttrId]>,
    {
        let n = schema.arity();
        if n == 0 {
            return Err(OrderingError::EmptySchema);
        }
        let mut counts = vec![0usize; n];
        let mut total_queries = 0usize;
        for bound in query_log {
            total_queries += 1;
            for &attr in bound {
                if attr.index() < n {
                    counts[attr.index()] += 1; // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
                }
            }
        }
        if total_queries == 0 {
            return Self::uniform(schema);
        }

        let mut relax_order: Vec<AttrId> = schema.attr_ids().collect();
        relax_order.sort_by(|&a, &b| counts[a.index()].cmp(&counts[b.index()]).then(a.cmp(&b))); // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction

        let total_bindings: usize = counts.iter().sum();
        let importance: Vec<f64> = if total_bindings == 0 {
            vec![1.0 / n as f64; n]
        } else {
            counts
                .iter()
                .map(|&c| c as f64 / total_bindings as f64)
                .collect()
        };

        Ok(AttributeOrdering {
            schema: schema.clone(),
            relax_order,
            importance,
            deciding: AttrSet::EMPTY,
            dependent: AttrSet::from_attrs(schema.attr_ids()),
            wt_decides: vec![0.0; n],
            wt_depends: counts.iter().map(|&c| c as f64).collect(),
        })
    }

    /// A uniform ordering (schema order, equal importance) — the model
    /// `RandomRelax` and ROCK implicitly use ("give equal importance to
    /// all the attributes", Section 6.4).
    pub fn uniform(schema: &Schema) -> Result<Self, OrderingError> {
        let n = schema.arity();
        if n == 0 {
            return Err(OrderingError::EmptySchema);
        }
        Ok(AttributeOrdering {
            schema: schema.clone(),
            relax_order: schema.attr_ids().collect(),
            importance: vec![1.0 / n as f64; n],
            deciding: AttrSet::EMPTY,
            dependent: AttrSet::from_attrs(schema.attr_ids()),
            wt_decides: vec![0.0; n],
            wt_depends: vec![0.0; n],
        })
    }

    /// Reassemble an ordering from raw parts (model persistence). The
    /// parts must come from a previously constructed ordering; basic
    /// shape checks guard against corrupted input.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        schema: Schema,
        relax_order: Vec<AttrId>,
        importance: Vec<f64>,
        deciding: AttrSet,
        dependent: AttrSet,
        wt_decides: Vec<f64>,
        wt_depends: Vec<f64>,
    ) -> Result<Self, OrderingError> {
        let n = schema.arity();
        if n == 0 {
            return Err(OrderingError::EmptySchema);
        }
        let shapes_ok = relax_order.len() == n
            && importance.len() == n
            && wt_decides.len() == n
            && wt_depends.len() == n
            && relax_order.iter().all(|a| a.index() < n);
        if !shapes_ok {
            return Err(OrderingError::ArityMismatch {
                schema: n,
                mined: relax_order.len(),
            });
        }
        Ok(AttributeOrdering {
            schema,
            relax_order,
            importance,
            deciding,
            dependent,
            wt_decides,
            wt_depends,
        })
    }

    /// The schema this ordering covers.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Attributes in relaxation order: index 0 is relaxed first (least
    /// important).
    pub fn relaxation_order(&self) -> &[AttrId] {
        &self.relax_order
    }

    /// 1-based relaxation position of `attr` (the paper's
    /// `RelaxOrder(k)`).
    pub fn relax_position(&self, attr: AttrId) -> usize {
        self.relax_order
            .iter()
            .position(|&a| a == attr)
            .map(|p| p + 1)
            // aimq-lint: allow(panic) -- relax_order is a permutation of the schema's attributes; only an AttrId minted for a different schema can miss, a caller contract violation worth surfacing loudly
            .expect("attribute belongs to ordering's schema")
    }

    /// Raw importance weight `Wimp(attr)`.
    pub fn importance(&self, attr: AttrId) -> f64 {
        self.importance[attr.index()] // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
    }

    /// Importance weights for a set of attributes, renormalized to sum to
    /// 1 — the form `Sim(Q, t)` needs (`Σ Wimp = 1` over the query's bound
    /// attributes, Section 5).
    pub fn normalized_importance(&self, attrs: &[AttrId]) -> Vec<f64> {
        let total: f64 = attrs.iter().map(|&a| self.importance(a)).sum();
        if total > 0.0 {
            attrs.iter().map(|&a| self.importance(a) / total).collect()
        } else if attrs.is_empty() {
            Vec::new()
        } else {
            vec![1.0 / attrs.len() as f64; attrs.len()]
        }
    }

    /// The deciding group (members of the chosen approximate key).
    pub fn deciding(&self) -> AttrSet {
        self.deciding
    }

    /// The dependent group.
    pub fn dependent(&self) -> AttrSet {
        self.dependent
    }

    /// `Wtdecides` for an attribute (0 when no AFD's antecedent holds it).
    pub fn wt_decides(&self, attr: AttrId) -> f64 {
        self.wt_decides[attr.index()] // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
    }

    /// `Wtdepends` for an attribute (0 when it is no AFD's consequent).
    pub fn wt_depends(&self, attr: AttrId) -> f64 {
        self.wt_depends[attr.index()] // aimq-lint: allow(indexing) -- schema-sized weight table; AttrId is in-range by construction
    }

    /// The paper's greedy multi-attribute relaxation order for a given
    /// level: combinations of `level` relaxation positions in
    /// lexicographic position order, so with 1-attribute order
    /// `{a1, a3, a4, a2}` the 2-attribute order is
    /// `{a1a3, a1a4, a1a2, a3a4, a3a2, a4a2}` (Section 4).
    pub fn multi_attribute_order(&self, level: usize) -> Vec<Vec<AttrId>> {
        combinations_in_order(&self.relax_order, level)
    }

    /// The full relaxation schedule up to `max_level` attributes relaxed
    /// at once: all 1-attribute steps in order, then all 2-attribute
    /// steps, and so on. This is the query sequence `GuidedRelax` issues
    /// per base-set tuple.
    pub fn relaxation_sequence(&self, max_level: usize) -> Vec<RelaxationStep> {
        let mut steps = Vec::new();
        for level in 1..=max_level.min(self.relax_order.len()) {
            for attrs in self.multi_attribute_order(level) {
                steps.push(RelaxationStep { attrs, level });
            }
        }
        steps
    }
}

/// All size-`level` combinations of `order`, enumerated in lexicographic
/// order of their *positions* in `order` — the paper's greedy
/// multi-attribute relaxation pattern. Shared by `GuidedRelax` (which
/// restricts the order to a query's bound attributes) and
/// [`AttributeOrdering::multi_attribute_order`].
pub fn combinations_in_order(order: &[AttrId], level: usize) -> Vec<Vec<AttrId>> {
    let n = order.len();
    if level == 0 || level > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut indices: Vec<usize> = (0..level).collect();
    loop {
        // aimq-lint: allow(indexing) -- combination cursors stay below n by the rollover invariant
        out.push(indices.iter().map(|&i| order[i]).collect());
        // next combination in lexicographic order
        let mut i = level;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            // aimq-lint: allow(indexing) -- combination cursors stay below n by the rollover invariant
            if indices[i] != i + n - level {
                break;
            }
        }
        indices[i] += 1; // aimq-lint: allow(indexing) -- combination cursors stay below n by the rollover invariant
        for j in i + 1..level {
            indices[j] = indices[j - 1] + 1; // aimq-lint: allow(indexing) -- combination cursors stay below n by the rollover invariant
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AKey, Afd, BucketConfig, EncodedRelation, MinedDependencies, TaneConfig};
    use aimq_catalog::{Schema, Tuple, Value};
    use aimq_storage::Relation;

    fn schema4() -> Schema {
        Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .categorical("C")
            .categorical("D")
            .build()
            .unwrap()
    }

    /// Hand-constructed mined set: key {C, D}; AFDs C→A (support .9),
    /// CD→B (support .8), A→B (support .6).
    fn hand_mined() -> MinedDependencies {
        MinedDependencies::from_parts(
            vec![
                Afd {
                    lhs: AttrSet::singleton(AttrId(2)),
                    rhs: AttrId(0),
                    error: 0.1,
                },
                Afd {
                    lhs: AttrSet::from_attrs([AttrId(2), AttrId(3)]),
                    rhs: AttrId(1),
                    error: 0.2,
                },
                Afd {
                    lhs: AttrSet::singleton(AttrId(0)),
                    rhs: AttrId(1),
                    error: 0.4,
                },
            ],
            vec![AKey {
                attrs: AttrSet::from_attrs([AttrId(2), AttrId(3)]),
                error: 0.05,
            }],
            4,
        )
    }

    #[test]
    fn partitions_by_best_key() {
        let ord = AttributeOrdering::derive(&schema4(), &hand_mined()).unwrap();
        assert_eq!(ord.deciding(), AttrSet::from_attrs([AttrId(2), AttrId(3)]));
        assert_eq!(ord.dependent(), AttrSet::from_attrs([AttrId(0), AttrId(1)]));
    }

    #[test]
    fn weights_match_hand_computation() {
        let ord = AttributeOrdering::derive(&schema4(), &hand_mined()).unwrap();
        // Wtdepends(A) = support(C→A)/1 = 0.9
        assert!((ord.wt_depends(AttrId(0)) - 0.9).abs() < 1e-12);
        // Wtdepends(B) = support(CD→B)/2 + support(A→B)/1 = 0.4 + 0.6 = 1.0
        assert!((ord.wt_depends(AttrId(1)) - 1.0).abs() < 1e-12);
        // Wtdecides(C) = 0.9/1 (C→A) + 0.8/2 (CD→B) = 1.3
        assert!((ord.wt_decides(AttrId(2)) - 1.3).abs() < 1e-12);
        // Wtdecides(D) = 0.8/2 = 0.4
        assert!((ord.wt_decides(AttrId(3)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn relaxation_order_dependent_then_deciding_ascending() {
        let ord = AttributeOrdering::derive(&schema4(), &hand_mined()).unwrap();
        // Dependent: A (0.9) < B (1.0); Deciding: D (0.4) < C (1.3).
        assert_eq!(
            ord.relaxation_order(),
            &[AttrId(0), AttrId(1), AttrId(3), AttrId(2)]
        );
        assert_eq!(ord.relax_position(AttrId(0)), 1);
        assert_eq!(ord.relax_position(AttrId(2)), 4);
    }

    #[test]
    fn importance_weights_follow_paper_formula() {
        let ord = AttributeOrdering::derive(&schema4(), &hand_mined()).unwrap();
        // Wimp(A) = (1/4) × (0.9/1.9)
        let expected_a = 0.25 * (0.9 / 1.9);
        assert!((ord.importance(AttrId(0)) - expected_a).abs() < 1e-12);
        // Wimp(C) = (4/4) × (1.3/1.7)
        let expected_c = 1.0 * (1.3 / 1.7);
        assert!((ord.importance(AttrId(2)) - expected_c).abs() < 1e-12);
        // The most important attribute (last relaxed) has the largest Wimp.
        let max_attr = (0..4)
            .map(AttrId)
            .max_by(|&a, &b| ord.importance(a).partial_cmp(&ord.importance(b)).unwrap())
            .unwrap();
        assert_eq!(max_attr, AttrId(2));
    }

    #[test]
    fn normalized_importance_sums_to_one() {
        let ord = AttributeOrdering::derive(&schema4(), &hand_mined()).unwrap();
        let attrs = [AttrId(0), AttrId(2)];
        let w = ord.normalized_importance(&attrs);
        assert_eq!(w.len(), 2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Relative magnitudes preserved.
        assert!(w[1] > w[0]);
    }

    #[test]
    fn normalized_importance_uniform_fallback() {
        let ord = AttributeOrdering::uniform(&schema4()).unwrap();
        let w = ord.normalized_importance(&[AttrId(1), AttrId(2), AttrId(3)]);
        for x in w {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!(ord.normalized_importance(&[]).is_empty());
    }

    #[test]
    fn multi_attribute_order_matches_paper_example() {
        // Relaxation order {a1, a3, a4, a2} — build it via hand weights.
        // Our hand_mined gives order [A, B, D, C] = positions; the paper's
        // example is about the *pattern*: pairs in lexicographic position
        // order.
        let ord = AttributeOrdering::derive(&schema4(), &hand_mined()).unwrap();
        let pairs = ord.multi_attribute_order(2);
        let o = ord.relaxation_order();
        assert_eq!(
            pairs,
            vec![
                vec![o[0], o[1]],
                vec![o[0], o[2]],
                vec![o[0], o[3]],
                vec![o[1], o[2]],
                vec![o[1], o[3]],
                vec![o[2], o[3]],
            ]
        );
    }

    #[test]
    fn multi_attribute_order_edge_cases() {
        let ord = AttributeOrdering::derive(&schema4(), &hand_mined()).unwrap();
        assert!(ord.multi_attribute_order(0).is_empty());
        assert!(ord.multi_attribute_order(5).is_empty());
        let all = ord.multi_attribute_order(4);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].len(), 4);
        assert_eq!(ord.multi_attribute_order(3).len(), 4); // C(4,3)
    }

    #[test]
    fn relaxation_sequence_orders_levels() {
        let ord = AttributeOrdering::derive(&schema4(), &hand_mined()).unwrap();
        let seq = ord.relaxation_sequence(2);
        assert_eq!(seq.len(), 4 + 6);
        assert!(seq[..4].iter().all(|s| s.level == 1));
        assert!(seq[4..].iter().all(|s| s.level == 2));
        assert_eq!(seq[0].attrs, vec![AttrId(0)]);
    }

    #[test]
    fn query_log_ordering_follows_binding_frequency() {
        let schema = schema4();
        // D in 3 queries, C in 2, A in 1, B in 0.
        let q1 = [AttrId(3), AttrId(2)];
        let q2 = [AttrId(3), AttrId(2), AttrId(0)];
        let q3 = [AttrId(3)];
        let log: Vec<&[AttrId]> = vec![&q1, &q2, &q3];
        let ord = AttributeOrdering::from_query_log(&schema, log).unwrap();
        // Relax never-asked-for B first, most-asked-for D last.
        assert_eq!(ord.relaxation_order()[0], AttrId(1));
        assert_eq!(*ord.relaxation_order().last().unwrap(), AttrId(3));
        // Importance proportional to binding frequency: D = 3/6.
        assert!((ord.importance(AttrId(3)) - 0.5).abs() < 1e-12);
        assert_eq!(ord.importance(AttrId(1)), 0.0);
    }

    #[test]
    fn empty_query_log_degenerates_to_uniform() {
        let schema = schema4();
        let log: Vec<&[AttrId]> = Vec::new();
        let ord = AttributeOrdering::from_query_log(&schema, log).unwrap();
        for a in schema.attr_ids() {
            assert!((ord.importance(a) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn query_log_ignores_out_of_schema_attrs() {
        let schema = schema4();
        let q = [AttrId(0), AttrId(99)];
        let log: Vec<&[AttrId]> = vec![&q];
        let ord = AttributeOrdering::from_query_log(&schema, log).unwrap();
        assert!((ord.importance(AttrId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schema_is_error() {
        let schema = Schema::builder("R").build().unwrap();
        assert_eq!(
            AttributeOrdering::derive(&schema, &MinedDependencies::default()).unwrap_err(),
            OrderingError::EmptySchema
        );
    }

    #[test]
    fn no_mined_key_makes_everything_dependent() {
        let mined = MinedDependencies::from_parts(
            vec![Afd {
                lhs: AttrSet::singleton(AttrId(0)),
                rhs: AttrId(1),
                error: 0.1,
            }],
            vec![],
            4,
        );
        let ord = AttributeOrdering::derive(&schema4(), &mined).unwrap();
        assert!(ord.deciding().is_empty());
        assert_eq!(ord.dependent().len(), 4);
        assert_eq!(ord.relaxation_order().len(), 4);
        // B is the only attribute with dependence evidence → most
        // important of the dependent group, relaxed last.
        assert_eq!(*ord.relaxation_order().last().unwrap(), AttrId(1));
    }

    #[test]
    fn end_to_end_on_mined_relation() {
        // Model → Make exactly; (Model, Color) a key. Model should end up
        // more deciding than Make.
        let schema = Schema::builder("CarDB")
            .categorical("Make")
            .categorical("Model")
            .categorical("Color")
            .build()
            .unwrap();
        let rows = [
            ("Toyota", "Camry", "White"),
            ("Toyota", "Camry", "Black"),
            ("Toyota", "Corolla", "White"),
            ("Honda", "Accord", "Black"),
            ("Honda", "Accord", "White"),
            ("Honda", "Civic", "Red"),
            ("Ford", "Focus", "Red"),
            ("Ford", "Focus", "White"),
        ];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(mk, md, c)| {
                Tuple::new(&schema, vec![Value::cat(mk), Value::cat(md), Value::cat(c)]).unwrap()
            })
            .collect();
        let rel = Relation::from_tuples(schema.clone(), &tuples).unwrap();
        let enc = EncodedRelation::encode(&rel, &BucketConfig::for_schema(&schema));
        let mined = MinedDependencies::mine(&enc, &TaneConfig::default());
        let ord = AttributeOrdering::derive(&schema, &mined).unwrap();
        // Make is functionally determined by Model → Make is dependent and
        // relaxed before Model.
        assert!(ord.relax_position(AttrId(0)) < ord.relax_position(AttrId(1)));
        // Σ Wimp over all attrs of any subset normalizes to 1.
        let w = ord.normalized_importance(&[AttrId(0), AttrId(1), AttrId(2)]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
