use std::fmt;

use aimq_catalog::{AttrId, Schema};
use serde::{Deserialize, Serialize};

/// A set of attributes represented as a 64-bit mask.
///
/// Attribute-set lattices are the working currency of TANE: every node of
/// the levelwise search, every AFD antecedent and every approximate key is
/// an `AttrSet`. 64 attributes is far beyond any Web-form relation (the
/// paper's widest is CensusDB with 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrSet(u64);

impl AttrSet {
    /// Maximum number of attributes representable.
    pub const MAX_ATTRS: usize = 64;

    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Singleton set `{attr}`.
    pub fn singleton(attr: AttrId) -> Self {
        assert!(attr.index() < Self::MAX_ATTRS, "attribute index too large");
        AttrSet(1u64 << attr.index())
    }

    /// Set of all attributes of `schema`.
    pub fn full(schema: &Schema) -> Self {
        assert!(schema.arity() <= Self::MAX_ATTRS);
        if schema.arity() == Self::MAX_ATTRS {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << schema.arity()) - 1)
        }
    }

    /// The raw 64-bit membership mask (for persistence).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw mask produced by [`AttrSet::bits`].
    pub fn from_bits(bits: u64) -> Self {
        AttrSet(bits)
    }

    /// Build from an iterator of attribute ids.
    pub fn from_attrs(attrs: impl IntoIterator<Item = AttrId>) -> Self {
        attrs.into_iter().fold(AttrSet::EMPTY, |s, a| s.with(a))
    }

    /// This set plus `attr`.
    #[must_use]
    pub fn with(self, attr: AttrId) -> Self {
        assert!(attr.index() < Self::MAX_ATTRS);
        AttrSet(self.0 | (1u64 << attr.index()))
    }

    /// This set minus `attr`.
    #[must_use]
    pub fn without(self, attr: AttrId) -> Self {
        AttrSet(self.0 & !(1u64 << attr.index()))
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: AttrSet) -> Self {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: AttrSet) -> Self {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(self, other: AttrSet) -> Self {
        AttrSet(self.0 & !other.0)
    }

    /// Membership test.
    pub fn contains(self, attr: AttrId) -> bool {
        attr.index() < Self::MAX_ATTRS && (self.0 >> attr.index()) & 1 == 1
    }

    /// `true` if every attribute of `other` is in `self`.
    pub fn is_superset_of(self, other: AttrSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Number of attributes in the set — the paper's `size(A)`.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` for the empty set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over members in ascending attribute order.
    pub fn iter(self) -> impl Iterator<Item = AttrId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(AttrId(i))
            }
        })
    }

    /// All subsets obtained by removing exactly one member — the lattice
    /// parents TANE combines.
    pub fn subsets_dropping_one(self) -> impl Iterator<Item = (AttrId, AttrSet)> {
        self.iter().map(move |a| (a, self.without(a)))
    }

    /// Render as attribute names, e.g. `{Make, Model}`.
    pub fn display_with<'a>(&'a self, schema: &'a Schema) -> AttrSetDisplay<'a> {
        AttrSetDisplay { set: self, schema }
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        AttrSet::from_attrs(iter)
    }
}

/// Helper returned by [`AttrSet::display_with`].
pub struct AttrSetDisplay<'a> {
    set: &'a AttrSet,
    schema: &'a Schema,
}

impl fmt::Display for AttrSetDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.set.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.schema.attr_name(a))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = AttrSet::from_attrs([AttrId(0), AttrId(2), AttrId(5)]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(AttrId(0)));
        assert!(!s.contains(AttrId(1)));
        assert!(s.contains(AttrId(5)));
        assert!(!s.contains(AttrId(63)));
    }

    #[test]
    fn with_without_round_trip() {
        let s = AttrSet::singleton(AttrId(3));
        let s2 = s.with(AttrId(7)).without(AttrId(3));
        assert_eq!(s2, AttrSet::singleton(AttrId(7)));
        // Removing an absent attribute is a no-op.
        assert_eq!(s.without(AttrId(9)), s);
        // Adding a present attribute is a no-op.
        assert_eq!(s.with(AttrId(3)), s);
    }

    #[test]
    fn set_algebra() {
        let a = AttrSet::from_attrs([AttrId(0), AttrId(1)]);
        let b = AttrSet::from_attrs([AttrId(1), AttrId(2)]);
        assert_eq!(
            a.union(b),
            AttrSet::from_attrs([AttrId(0), AttrId(1), AttrId(2)])
        );
        assert_eq!(a.intersect(b), AttrSet::singleton(AttrId(1)));
        assert_eq!(a.difference(b), AttrSet::singleton(AttrId(0)));
        assert!(a.union(b).is_superset_of(a));
        assert!(!a.is_superset_of(b));
    }

    #[test]
    fn iter_is_sorted() {
        let s = AttrSet::from_attrs([AttrId(5), AttrId(0), AttrId(3)]);
        let ids: Vec<usize> = s.iter().map(AttrId::index).collect();
        assert_eq!(ids, vec![0, 3, 5]);
    }

    #[test]
    fn subsets_dropping_one_enumerates_parents() {
        let s = AttrSet::from_attrs([AttrId(0), AttrId(1), AttrId(2)]);
        let parents: Vec<(usize, usize)> = s
            .subsets_dropping_one()
            .map(|(a, sub)| (a.index(), sub.len()))
            .collect();
        assert_eq!(parents.len(), 3);
        assert!(parents.iter().all(|&(_, l)| l == 2));
    }

    #[test]
    fn full_set_matches_schema() {
        let schema = Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .numeric("C")
            .build()
            .unwrap();
        let s = AttrSet::full(&schema);
        assert_eq!(s.len(), 3);
        assert!(schema.attr_ids().all(|a| s.contains(a)));
    }

    #[test]
    fn display_uses_names() {
        let schema = Schema::builder("R")
            .categorical("Make")
            .categorical("Model")
            .build()
            .unwrap();
        let s = AttrSet::from_attrs([AttrId(0), AttrId(1)]);
        assert_eq!(s.display_with(&schema).to_string(), "{Make, Model}");
    }

    #[test]
    fn empty_set_behaves() {
        let e = AttrSet::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.iter().count(), 0);
        assert!(AttrSet::singleton(AttrId(1)).is_superset_of(e));
    }
}
