//! Serving-side observability: admission counters, queue depth, a
//! latency histogram in virtual ticks, and per-worker utilization.
//!
//! Everything is a relaxed atomic — the counters are monotone and
//! independently meaningful, so cross-field snapshot consistency (which
//! the storage meter's seqlock provides for `Work` accounting) is not
//! needed here; a snapshot that is off by one in-flight query is still
//! a correct observation of a concurrent system.
//!
//! Latencies are measured in **virtual probe ticks** (the per-query
//! [`crate::DeadlineWebDb`] clock), not wall time: the histogram of a
//! replayed query log is identical run to run and machine to machine,
//! which keeps serving tests assertable and the crate inside the
//! workspace's L4 wall-clock lint scope.

use std::sync::atomic::{AtomicU64, Ordering};

use aimq_catalog::Json;
use serde::{Deserialize, Serialize};

/// Number of power-of-two latency buckets: bucket `i` counts queries
/// whose probe cost in ticks lies in `[2^(i-1), 2^i)` (bucket 0 holds
/// zero-tick queries); the last bucket absorbs everything larger.
pub const LATENCY_BUCKETS: usize = 16;

/// Shared serving counters. One instance per [`crate::QueryServer`],
/// updated by the submitting thread and every worker.
#[derive(Debug, Default)]
pub struct ServeStats {
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    submitted: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    admitted: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    rejected: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    completed: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    deadline_missed: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    replies_dropped: AtomicU64,
    // aimq-atomic: counter -- monotone high-water mark via fetch_max
    max_queue_depth: AtomicU64,
    // aimq-atomic: counter -- monotone tally; readers tolerate torn snapshots
    latency_ticks_total: AtomicU64,
    // aimq-atomic: counter -- per-bucket tallies; no cross-slot consistency
    latency_hist: [AtomicU64; LATENCY_BUCKETS],
    // aimq-atomic: counter -- per-worker tallies; no cross-slot consistency
    worker_processed: Vec<AtomicU64>,
}

/// Plain-value copy of [`ServeStats`] for reporting.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServeStatsSnapshot {
    /// Queries offered to [`crate::QueryServer::submit`].
    pub submitted: u64,
    /// Queries accepted into the admission queue.
    pub admitted: u64,
    /// Queries refused with `Overloaded` (admitted + rejected +
    /// closed-rejections == submitted).
    pub rejected: u64,
    /// Queries fully served within their deadline.
    pub completed: u64,
    /// Queries that exhausted their probe-tick budget.
    pub deadline_missed: u64,
    /// Served results whose caller had already dropped the ticket, so
    /// the reply send failed. Not an error for the server — the work
    /// still counts toward `completed`/`deadline_missed` — but an
    /// abandoned-caller rate worth watching.
    pub replies_dropped: u64,
    /// Highest queue depth observed at any admission.
    pub max_queue_depth: u64,
    /// Sum of per-query probe costs, in virtual ticks.
    pub latency_ticks_total: u64,
    /// Power-of-two histogram of per-query probe cost.
    pub latency_hist: Vec<u64>,
    /// Queries processed per worker (index = worker id). The spread is
    /// the utilization picture: an idle worker shows up as a low count.
    pub worker_processed: Vec<u64>,
}

impl ServeStats {
    /// Counters for a pool of `workers` threads.
    pub fn new(workers: usize) -> Self {
        ServeStats {
            worker_processed: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            ..ServeStats::default()
        }
    }

    pub(crate) fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_admitted(&self, depth_after: usize) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(depth_after as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_reply_dropped(&self) {
        self.replies_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_served(&self, worker: usize, latency_ticks: u64, missed: bool) {
        if missed {
            self.deadline_missed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_ticks_total
            .fetch_add(latency_ticks, Ordering::Relaxed);
        let bucket = bucket_for(latency_ticks);
        if let Some(slot) = self.latency_hist.get(bucket) {
            // aimq-atomic: counter -- histogram bucket tally
            slot.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(slot) = self.worker_processed.get(worker) {
            // aimq-atomic: counter -- per-worker tally
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copy every counter. Relaxed loads: see the module docs for why
    /// cross-field consistency is deliberately not promised.
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            replies_dropped: self.replies_dropped.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            latency_ticks_total: self.latency_ticks_total.load(Ordering::Relaxed),
            latency_hist: self
                .latency_hist
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            worker_processed: self
                .worker_processed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl ServeStatsSnapshot {
    /// The snapshot as a deterministic [`Json`] object (field order is
    /// declaration order) — the single serialization path shared by the
    /// HTTP `GET /stats` route and the `serve-bench` report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("submitted", Json::Num(self.submitted as f64)),
            ("admitted", Json::Num(self.admitted as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("deadline_missed", Json::Num(self.deadline_missed as f64)),
            ("replies_dropped", Json::Num(self.replies_dropped as f64)),
            ("max_queue_depth", Json::Num(self.max_queue_depth as f64)),
            (
                "latency_ticks_total",
                Json::Num(self.latency_ticks_total as f64),
            ),
            (
                "latency_hist",
                Json::Arr(
                    self.latency_hist
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
            (
                "worker_processed",
                Json::Arr(
                    self.worker_processed
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Histogram bucket for a tick count: 0 → 0, otherwise
/// `floor(log2(ticks)) + 1`, saturating at the last bucket.
fn bucket_for(ticks: u64) -> usize {
    if ticks == 0 {
        0
    } else {
        let raw = 64 - ticks.leading_zeros() as usize;
        raw.min(LATENCY_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 1);
        assert_eq!(bucket_for(2), 2);
        assert_eq!(bucket_for(3), 2);
        assert_eq!(bucket_for(4), 3);
        assert_eq!(bucket_for(1023), 10);
        assert_eq!(bucket_for(1024), 11);
        assert_eq!(bucket_for(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn snapshot_reflects_recorded_events() {
        let stats = ServeStats::new(2);
        stats.note_submitted();
        stats.note_submitted();
        stats.note_submitted();
        stats.note_admitted(1);
        stats.note_admitted(2);
        stats.note_rejected();
        stats.note_served(0, 30, false);
        stats.note_served(1, 50, true);
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.deadline_missed, 1);
        assert_eq!(snap.max_queue_depth, 2);
        assert_eq!(snap.latency_ticks_total, 80);
        assert_eq!(snap.worker_processed, vec![1, 1]);
        let hist_total: u64 = snap.latency_hist.iter().sum();
        assert_eq!(hist_total, 2);
        // 30 ticks → bucket 5 ([16,32)); 50 → bucket 6 ([32,64)).
        assert_eq!(snap.latency_hist.get(5), Some(&1));
        assert_eq!(snap.latency_hist.get(6), Some(&1));
    }

    #[test]
    fn out_of_range_worker_ids_are_ignored_not_panicked() {
        let stats = ServeStats::new(1);
        stats.note_served(99, 5, false);
        let snap = stats.snapshot();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.worker_processed, vec![0]);
    }
}
