//! Per-query deadlines over virtual time.
//!
//! Real deadlines (wall-clock timers) would make serving behavior
//! depend on machine load and scheduling — the same query could
//! complete on one run and miss on the next. Instead each in-flight
//! query gets its own [`DeadlineWebDb`]: a decorator holding a private
//! [`VirtualClock`] that charges a fixed number of ticks per probe.
//! When the accumulated cost reaches the deadline, further probes fail
//! with the *terminal* [`QueryError::Unavailable`], which the engine
//! already knows how to degrade on — it abandons remaining work and
//! returns a partial answer with a populated `DegradationReport`.
//!
//! Because the clock is per-query and every probe costs the same
//! whether it is served from cache, source, or fails, deadline behavior
//! is a pure function of the query's own probe count: independent of
//! worker interleaving, machine speed, and concurrency level. The same
//! query with the same budget misses (or not) identically at 1 worker
//! and at 64.

use aimq_catalog::{Schema, SelectionQuery};
use aimq_storage::{AccessStats, QueryError, QueryPage, VirtualClock, WebDatabase};
use std::sync::atomic::{AtomicBool, Ordering};

/// Decorator enforcing a probe-tick budget on one query's probes.
pub struct DeadlineWebDb<'a> {
    inner: &'a dyn WebDatabase,
    clock: VirtualClock,
    /// Total tick budget; 0 disables the deadline.
    deadline_ticks: u64,
    /// Cost charged per probe, cache hit or not.
    ticks_per_probe: u64,
    // aimq-atomic: flag -- set once on first refusal; Release store pairs
    // with the Acquire load in `deadline_missed`
    missed: AtomicBool,
}

impl<'a> DeadlineWebDb<'a> {
    /// Wrap `inner` with a budget of `deadline_ticks`, charging
    /// `ticks_per_probe` per probe. `deadline_ticks == 0` disables the
    /// deadline (probes are still metered on the clock).
    pub fn new(inner: &'a dyn WebDatabase, deadline_ticks: u64, ticks_per_probe: u64) -> Self {
        DeadlineWebDb {
            inner,
            clock: VirtualClock::new(),
            deadline_ticks,
            ticks_per_probe: ticks_per_probe.max(1),
            missed: AtomicBool::new(false),
        }
    }

    /// Virtual ticks consumed so far (the query's probe cost).
    pub fn elapsed_ticks(&self) -> u64 {
        self.clock.now()
    }

    /// `true` once any probe was refused for exceeding the deadline.
    pub fn deadline_missed(&self) -> bool {
        self.missed.load(Ordering::Acquire)
    }
}

impl WebDatabase for DeadlineWebDb<'_> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    // aimq-probe: entry -- deadline wrapper; overruns convert to terminal Unavailable and are recorded on the `missed` flag
    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        if self.deadline_ticks > 0 && self.clock.now() >= self.deadline_ticks {
            // Terminal by design: the engine treats `Unavailable` as
            // "stop probing, degrade gracefully", which is exactly the
            // deadline semantics — salvage what is already ranked.
            self.missed.store(true, Ordering::Release);
            return Err(QueryError::Unavailable);
        }
        self.clock.advance(self.ticks_per_probe);
        self.inner.try_query(query)
    }

    fn stats(&self) -> AccessStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }

    fn source_health(&self) -> Option<Vec<aimq_storage::SourceHealth>> {
        self.inner.source_health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq_catalog::{AttrId, Predicate, Tuple, Value};
    use aimq_storage::{InMemoryWebDb, Relation};

    fn db() -> InMemoryWebDb {
        let schema = Schema::builder("R")
            .categorical("Make")
            .numeric("Price")
            .build()
            .unwrap();
        let tuples = [("Toyota", 10_000.0), ("Honda", 9_000.0)]
            .iter()
            .map(|&(m, p)| Tuple::new(&schema, vec![Value::cat(m), Value::num(p)]).unwrap())
            .collect::<Vec<_>>();
        InMemoryWebDb::new(Relation::from_tuples(schema, &tuples).unwrap())
    }

    fn probe() -> SelectionQuery {
        SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("Toyota"))])
    }

    #[test]
    fn probes_succeed_until_the_budget_is_spent() {
        let inner = db();
        let ddb = DeadlineWebDb::new(&inner, 30, 10);
        for _ in 0..3 {
            assert!(ddb.try_query(&probe()).is_ok());
        }
        assert!(!ddb.deadline_missed());
        assert_eq!(ddb.elapsed_ticks(), 30);
        // Fourth probe would start at tick 30 == deadline: refused.
        assert_eq!(ddb.try_query(&probe()), Err(QueryError::Unavailable));
        assert!(ddb.deadline_missed());
        // The refusal never reached the source.
        assert_eq!(inner.stats().queries_issued, 3);
    }

    #[test]
    fn zero_deadline_disables_enforcement_but_still_meters() {
        let inner = db();
        let ddb = DeadlineWebDb::new(&inner, 0, 7);
        for _ in 0..100 {
            assert!(ddb.try_query(&probe()).is_ok());
        }
        assert!(!ddb.deadline_missed());
        assert_eq!(ddb.elapsed_ticks(), 700);
    }

    #[test]
    fn probe_cost_is_charged_identically_for_misses() {
        // A probe that matches nothing costs the same ticks as one that
        // returns tuples: deadline behavior must depend on probe count
        // only, never on result contents.
        let inner = db();
        let ddb = DeadlineWebDb::new(&inner, 0, 5);
        let empty = SelectionQuery::new(vec![Predicate::eq(AttrId(0), Value::cat("DeLorean"))]);
        ddb.try_query(&probe()).unwrap();
        ddb.try_query(&empty).unwrap();
        assert_eq!(ddb.elapsed_ticks(), 10);
    }
}
