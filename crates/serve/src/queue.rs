//! Bounded admission queue with backpressure.
//!
//! The serving runtime admits work through one [`AdmissionQueue`]: a
//! fixed-capacity FIFO that *rejects* — never blocks, never silently
//! drops — when full. Producers get the item back in the error so they
//! can surface a typed `Overloaded` to the caller; consumers block on a
//! condition variable and drain remaining items after [`close`]
//! (graceful shutdown: everything admitted is eventually served).
//!
//! [`close`]: AdmissionQueue::close

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::lock;

/// Why a push was refused. The item comes back so the caller can report
/// or retry — admission control must never lose work silently.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the caller should shed load.
    Overloaded(T),
    /// The queue was closed; no new work is accepted.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO.
///
/// All coordination is a single mutex plus one condition variable —
/// simple enough to exhaustively test (see the dual-order smoke test)
/// and free of ordering subtleties. Throughput is bounded by the
/// engine work per item, not by queue handoff, so a finer-grained
/// design would buy nothing here.
pub struct AdmissionQueue<T> {
    // aimq-lock: family(admission-queue) -- sole queue lock; held only for
    // push/pop bookkeeping and released before notifying the condvar
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// An open queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; exact under the caller's own lock
    /// discipline only).
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// `true` when no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit `item`, returning the depth *after* the push, or give it
    /// back with the reason admission failed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = lock(&self.state);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Overloaded(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Block until an item is available or the queue is closed *and*
    /// drained. `None` means shutdown: every admitted item has been
    /// handed to some consumer.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Close the queue: future pushes fail with [`PushError::Closed`],
    /// consumers drain what was admitted and then observe `None`.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_is_preserved() {
        let q = AdmissionQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn overload_returns_the_item_and_depth_is_reported() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push("a").unwrap(), 1);
        assert_eq!(q.try_push("b").unwrap(), 2);
        match q.try_push("c") {
            Err(PushError::Overloaded(item)) => assert_eq!(item, "c"),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Draining one slot re-opens admission.
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.try_push("c").unwrap(), 2);
    }

    #[test]
    fn close_drains_admitted_items_then_yields_none() {
        let q = AdmissionQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        match q.try_push(3) {
            Err(PushError::Closed(item)) => assert_eq!(item, 3),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue stays closed");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(AdmissionQueue::<u32>::new(1));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        q.close();
        for c in consumers {
            assert_eq!(c.join().unwrap(), None);
        }
    }

    /// Concurrent producers/consumers: every admitted item is consumed
    /// exactly once, in both spawn orders (producers-first and
    /// consumers-first) — a cheap stand-in for a model checker that
    /// still exercises both "queue starts full" and "consumers park
    /// first" interleavings.
    #[test]
    fn dual_order_smoke_every_item_consumed_exactly_once() {
        for consumers_first in [false, true] {
            let q = Arc::new(AdmissionQueue::<u64>::new(8));
            let consumed = Arc::new(AtomicU64::new(0));
            let count = Arc::new(AtomicU64::new(0));

            let spawn_consumers = |q: &Arc<AdmissionQueue<u64>>| {
                (0..4)
                    .map(|_| {
                        let q = Arc::clone(q);
                        let consumed = Arc::clone(&consumed);
                        let count = Arc::clone(&count);
                        thread::spawn(move || {
                            while let Some(v) = q.pop() {
                                consumed.fetch_add(v, Ordering::Relaxed);
                                count.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                    })
                    .collect::<Vec<_>>()
            };
            let spawn_producers = |q: &Arc<AdmissionQueue<u64>>| {
                (0..4)
                    .map(|p| {
                        let q = Arc::clone(q);
                        thread::spawn(move || {
                            let mut admitted = 0u64;
                            for i in 0..64u64 {
                                let v = p * 1000 + i;
                                // Spin on overload: the test wants every
                                // value through, not load shedding.
                                let mut item = v;
                                loop {
                                    match q.try_push(item) {
                                        Ok(_) => break,
                                        Err(PushError::Overloaded(back)) => {
                                            item = back;
                                            thread::yield_now();
                                        }
                                        Err(PushError::Closed(_)) => return admitted,
                                    }
                                }
                                admitted += v;
                            }
                            admitted
                        })
                    })
                    .collect::<Vec<_>>()
            };

            let (producers, workers) = if consumers_first {
                let w = spawn_consumers(&q);
                (spawn_producers(&q), w)
            } else {
                let p = spawn_producers(&q);
                (p, spawn_consumers(&q))
            };

            let produced: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
            q.close();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(count.load(Ordering::Relaxed), 4 * 64);
            assert_eq!(consumed.load(Ordering::Relaxed), produced);
        }
    }
}
