#![warn(missing_docs)]

//! # aimq-serve
//!
//! Concurrent query-serving runtime for the AIMQ engine — the layer the
//! paper's deployed BANKS/Autos frontend would sit on.
//!
//! A [`QueryServer`] owns a pool of worker threads, each answering
//! imprecise queries (Algorithm 1) against one shared, immutable,
//! `Arc`-wrapped [`aimq::AimqSystem`] and one shared source stack
//! (typically a lock-striped `CachedWebDb` over the fault-tolerant
//! access layer). In front of the pool sits a bounded
//! [`AdmissionQueue`]: when the backlog reaches capacity, new queries
//! are refused with a typed [`ServeError::Overloaded`] — backpressure
//! is explicit, never an unbounded buffer or a silent drop.
//!
//! Per-query **deadlines** run on virtual time: every in-flight query
//! gets a private [`DeadlineWebDb`] charging fixed ticks per probe, so
//! whether a query misses its deadline depends only on its own probe
//! count — not on machine speed, worker count, or interleaving. A miss
//! surfaces as [`ServeError::DeadlineExceeded`] carrying the engine's
//! partial answer and its `DegradationReport`.
//!
//! [`ServeStats`] aggregates the serving picture: admissions and
//! rejections, queue depth, a power-of-two latency histogram in probe
//! ticks, deadline misses, and per-worker utilization.
//!
//! This crate is inside the workspace's determinism lint scope (L3 +
//! L4): no hash containers, no wall-clock reads, no real sleeps — the
//! whole runtime replays byte-identically, which is what makes its
//! concurrency tests assertable.

mod deadline;
mod queue;
mod server;
mod stats;

pub use deadline::DeadlineWebDb;
pub use queue::{AdmissionQueue, PushError};
pub use server::{QueryServer, ServeConfig, ServeOutcome, ServeResult, Ticket};
pub use stats::{ServeStats, ServeStatsSnapshot, LATENCY_BUCKETS};

use aimq::AnswerSet;
use std::sync::{Mutex, MutexGuard};

/// Why a query was not fully served.
#[derive(Debug)]
pub enum ServeError {
    /// The admission queue (plus in-service slots) is at capacity;
    /// resubmit after backing off.
    Overloaded,
    /// The query exhausted its probe-tick budget. The engine degraded
    /// gracefully: `partial` holds whatever was ranked before the
    /// deadline, with the damage itemized in its `degradation` report.
    DeadlineExceeded {
        /// Partial answer set (possibly empty) with degradation report.
        partial: Box<AnswerSet>,
    },
    /// The server is shutting down and no longer admits queries, or it
    /// dropped the request's reply channel mid-shutdown.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full; query rejected"),
            ServeError::DeadlineExceeded { partial } => write!(
                f,
                "deadline exceeded after {} attempted probes ({} answers salvaged)",
                partial.degradation.probes_attempted,
                partial.answers.len()
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Poison-recovering lock: a worker that panicked mid-update of queue
/// state cannot corrupt a `VecDeque` of owned requests (no invariants
/// span the panic point), so the right response is to keep serving, not
/// to cascade the panic through every thread that touches the mutex.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock() // aimq-lint: allow(lock-discipline) -- generic helper; family attributed at call sites
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn runtime_types_are_send_and_sync() {
        // The whole point of the crate: the read path is Send + Sync
        // end-to-end, so one system + one source stack serve N workers.
        assert_send_sync::<QueryServer>();
        assert_send_sync::<AdmissionQueue<String>>();
        assert_send_sync::<ServeStats>();
        assert_send_sync::<DeadlineWebDb<'_>>();
        assert_send_sync::<std::sync::Arc<dyn aimq_storage::WebDatabase>>();
        assert_send_sync::<std::sync::Arc<aimq::AimqSystem>>();
    }
}
