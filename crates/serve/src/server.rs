//! The worker pool: a [`QueryServer`] owns N threads, each running
//! Algorithm 1 against a shared, immutable [`AimqSystem`] and a shared
//! [`WebDatabase`] stack, fed from one bounded [`AdmissionQueue`].
//!
//! # Determinism under concurrency
//!
//! The knowledge base is immutable after training and the engine is
//! stateless per call, so a query's *answers* are a pure function of
//! `(system, db contents, query, engine config)` — worker count and
//! interleaving change only throughput. The one shared mutable surface
//! is the source stack (cache fills, access meters): cache state can
//! change *which layer* serves a probe but never the page it returns
//! (first-insertion-wins memoization of complete pages), and the meters
//! are cross-query aggregates by design. Consequently the engine's
//! per-answer `stats`/`retries` deltas are **not** comparable across
//! concurrency levels — byte-identity checks must compare ranked
//! answers, base query, and degradation probe counts, not meter deltas.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use aimq::{AimqSystem, AnswerSet, EngineConfig};
use aimq_catalog::ImpreciseQuery;
use aimq_storage::WebDatabase;

use crate::queue::{AdmissionQueue, PushError};
use crate::stats::{ServeStats, ServeStatsSnapshot};
use crate::{lock, DeadlineWebDb, ServeError};

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Admission-queue capacity; offered load beyond `workers +
    /// queue_capacity` in flight is rejected as `Overloaded`.
    pub queue_capacity: usize,
    /// Per-query probe-tick budget; 0 disables deadlines.
    pub deadline_ticks: u64,
    /// Virtual ticks charged per probe (see [`DeadlineWebDb`]).
    pub ticks_per_probe: u64,
    /// Engine configuration shared by every worker.
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            deadline_ticks: 0,
            ticks_per_probe: 1,
            engine: EngineConfig::default(),
        }
    }
}

/// A successfully served query.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The engine's full answer (top-k, base query, degradation).
    pub answer: AnswerSet,
    /// Probe cost in virtual ticks (the serving latency measure).
    pub latency_ticks: u64,
    /// Which worker served it (utilization attribution).
    pub worker: usize,
}

/// Per-query result delivered through a [`Ticket`].
pub type ServeResult = Result<ServeOutcome, ServeError>;

struct Request {
    query: ImpreciseQuery,
    reply: mpsc::Sender<ServeResult>,
}

/// Handle to one admitted query; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<ServeResult>,
}

impl Ticket {
    /// Block until the query is served (or the server shuts down with
    /// the request still queued, which yields `ShuttingDown`).
    pub fn wait(self) -> ServeResult {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// A running pool of query workers. Dropping without
/// [`QueryServer::shutdown`] also joins the workers (graceful drain).
pub struct QueryServer {
    queue: Arc<AdmissionQueue<Request>>,
    stats: Arc<ServeStats>,
    in_flight_limit: usize,
    // aimq-atomic: counter -- backlog occupancy; over-admission is corrected
    // by the fetch_add/fetch_sub pairing, so no ordering is needed
    in_queue_or_flight: Arc<AtomicU64>,
    // aimq-lock: family(engine-config) -- leaf lock; holders copy the
    // Copy config in or out and never block while holding the guard
    engine_config: Arc<Mutex<EngineConfig>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryServer {
    /// Start `config.workers` threads serving queries against the
    /// shared `system` and `db`. Both are `Arc`s: the knowledge base is
    /// immutable, and the source stack must be safe for concurrent
    /// probing (every decorator in `aimq-storage` is).
    pub fn start(
        system: Arc<AimqSystem>,
        db: Arc<dyn WebDatabase>,
        config: ServeConfig,
    ) -> QueryServer {
        let workers = config.workers.max(1);
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity.max(1)));
        let stats = Arc::new(ServeStats::new(workers));
        let in_queue_or_flight = Arc::new(AtomicU64::new(0));
        let engine_config = Arc::new(Mutex::new(config.engine));
        let handles = (0..workers)
            .map(|worker_id| {
                let system = Arc::clone(&system);
                let db = Arc::clone(&db);
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let in_flight = Arc::clone(&in_queue_or_flight);
                let engine_config = Arc::clone(&engine_config);
                let config = config.clone();
                std::thread::spawn(move || {
                    while let Some(request) = queue.pop() {
                        // Copy the engine knobs out at dequeue time: a
                        // concurrent reconfiguration applies to queries
                        // dequeued after it. The inner block drops the
                        // guard before the (blocking) engine call.
                        let engine = { *lock(&engine_config) };
                        serve_one(&system, &*db, &config, &engine, &stats, worker_id, request);
                        // aimq-atomic: counter -- releases this request's backlog slot
                        in_flight.fetch_sub(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        QueryServer {
            queue,
            stats,
            // Backpressure bound: admitted work is either queued or on a
            // worker; beyond queue + workers there is nowhere for it to
            // go but a growing backlog, so it is rejected instead.
            in_flight_limit: config.queue_capacity.max(1) + workers,
            in_queue_or_flight,
            engine_config,
            workers: handles,
        }
    }

    /// Offer a query. Admitted queries return a [`Ticket`]; when the
    /// backlog (queued + in service) is at capacity the query is
    /// rejected with [`ServeError::Overloaded`] — backpressure is a
    /// typed refusal, never an unbounded buffer or a silent drop.
    pub fn submit(&self, query: ImpreciseQuery) -> Result<Ticket, ServeError> {
        self.stats.note_submitted();
        // Reserve a backlog slot first; the queue's own capacity check
        // alone would let `workers` extra requests slip in while their
        // predecessors occupy the workers.
        let occupied = self.in_queue_or_flight.fetch_add(1, Ordering::Relaxed);
        if occupied >= self.in_flight_limit as u64 {
            self.in_queue_or_flight.fetch_sub(1, Ordering::Relaxed);
            self.stats.note_rejected();
            return Err(ServeError::Overloaded);
        }
        let (tx, rx) = mpsc::channel();
        match self.queue.try_push(Request { query, reply: tx }) {
            Ok(depth) => {
                self.stats.note_admitted(depth);
                Ok(Ticket { rx })
            }
            Err(PushError::Overloaded(_)) => {
                self.in_queue_or_flight.fetch_sub(1, Ordering::Relaxed);
                self.stats.note_rejected();
                Err(ServeError::Overloaded)
            }
            Err(PushError::Closed(_)) => {
                self.in_queue_or_flight.fetch_sub(1, Ordering::Relaxed);
                self.stats.note_rejected();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Serving counters so far.
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.stats.snapshot()
    }

    /// The engine knobs queries are currently answered under (the
    /// `GET /config` view).
    pub fn engine_config(&self) -> EngineConfig {
        *lock(&self.engine_config)
    }

    /// Replace the engine knobs. Queries dequeued after the call are
    /// answered under `config`; queries already on a worker keep the
    /// knobs they started with (a query is never reconfigured mid-run).
    pub fn set_engine_config(&self, config: EngineConfig) {
        *lock(&self.engine_config) = config;
    }

    /// Stop admitting new queries; everything already admitted keeps
    /// being served. Idempotent. This is the first half of
    /// [`QueryServer::shutdown`], exposed separately so a network front
    /// end can sequence its own drain between the halves: stop
    /// accepting connections → close admission → drain in-flight
    /// replies → join the pool.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Stop admitting, drain the queue, join every worker, and return
    /// the final counters. The ordering is the drain guarantee: the
    /// queue closes first, the workers are joined — which delivers
    /// every in-flight ticket's reply — and only then is the snapshot
    /// taken, so it observes a fully drained server.
    pub fn shutdown(mut self) -> ServeStatsSnapshot {
        self.close();
        for handle in self.workers.drain(..) {
            // A worker that panicked already delivered `ShuttingDown`
            // to its waiters via the dropped channel; joining the rest
            // matters more than propagating the panic payload.
            let _ = handle.join(); // aimq-lint: allow(result-discipline) -- join Err is a worker panic already surfaced to waiters
        }
        self.stats.snapshot()
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join(); // aimq-lint: allow(result-discipline) -- Drop must not panic; a worker panic is not recoverable here
        }
    }
}

fn serve_one(
    system: &AimqSystem,
    db: &dyn WebDatabase,
    config: &ServeConfig,
    engine: &EngineConfig,
    stats: &ServeStats,
    worker: usize,
    request: Request,
) {
    let deadline_db = DeadlineWebDb::new(db, config.deadline_ticks, config.ticks_per_probe);
    let answer = system.answer(&deadline_db, &request.query, engine);
    let latency_ticks = deadline_db.elapsed_ticks();
    let missed = deadline_db.deadline_missed();
    stats.note_served(worker, latency_ticks, missed);
    let result = if missed {
        // The engine already degraded gracefully on the deadline's
        // `Unavailable`: the partial answer set and its report ride
        // along in the typed error.
        Err(ServeError::DeadlineExceeded {
            partial: Box::new(answer),
        })
    } else {
        Ok(ServeOutcome {
            answer,
            latency_ticks,
            worker,
        })
    };
    // A dropped ticket (caller gave up) is not an error for the server,
    // but it is an observable event: an abandoned-caller spike means
    // deadlines and client patience have drifted apart.
    if request.reply.send(result).is_err() {
        stats.note_reply_dropped();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimq::TrainConfig;
    use aimq_catalog::Value;
    use aimq_catalog::{Schema, SelectionQuery};
    use aimq_data::CarDb;
    use aimq_storage::{AccessStats, CachedWebDb, InMemoryWebDb, QueryError, QueryPage};

    fn system_and_db() -> (Arc<AimqSystem>, Arc<dyn WebDatabase>, Vec<ImpreciseQuery>) {
        let db = InMemoryWebDb::new(CarDb::generate(600, 7));
        let sample = db.relation().random_sample(200, 1);
        let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
        let schema = db.schema().clone();
        let queries = ["Camry", "Accord", "Civic", "Corolla"]
            .iter()
            .map(|m| {
                ImpreciseQuery::builder(&schema)
                    .like("Model", Value::cat(*m))
                    .unwrap()
                    .build()
                    .unwrap()
            })
            .collect();
        let shared: Arc<dyn WebDatabase> = Arc::new(CachedWebDb::with_stripes(db, 1024, 8));
        (Arc::new(system), shared, queries)
    }

    #[test]
    fn concurrent_answers_match_the_single_threaded_engine() {
        let (system, db, queries) = system_and_db();
        // Reference: the plain engine on a cold, separate stack.
        let reference: Vec<AnswerSet> = {
            let cold = InMemoryWebDb::new(CarDb::generate(600, 7));
            queries
                .iter()
                .map(|q| system.answer(&cold, q, &EngineConfig::default()))
                .collect()
        };

        let server = QueryServer::start(
            Arc::clone(&system),
            db,
            ServeConfig {
                workers: 4,
                queue_capacity: 16,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| server.submit(q.clone()).expect("admitted"))
            .collect();
        for (ticket, expected) in tickets.into_iter().zip(&reference) {
            let got = ticket.wait().expect("served").answer;
            assert_eq!(got.answers.len(), expected.answers.len());
            for (g, e) in got.answers.iter().zip(&expected.answers) {
                assert_eq!(g.tuple, e.tuple);
                assert_eq!(g.similarity.to_bits(), e.similarity.to_bits());
            }
            assert_eq!(got.base_query, expected.base_query);
        }
        let final_stats = server.shutdown();
        assert_eq!(final_stats.admitted, 4);
        assert_eq!(final_stats.completed, 4);
        assert_eq!(final_stats.rejected, 0);
        assert_eq!(
            final_stats.worker_processed.iter().sum::<u64>(),
            4,
            "{final_stats:#?}"
        );
    }

    #[test]
    fn tight_deadline_returns_typed_error_with_partial_report() {
        let (system, db, queries) = system_and_db();
        let server = QueryServer::start(
            system,
            db,
            ServeConfig {
                workers: 1,
                queue_capacity: 4,
                deadline_ticks: 1, // one probe, then the axe
                ticks_per_probe: 1,
                ..ServeConfig::default()
            },
        );
        let q = queries.first().expect("queries").clone();
        let outcome = server.submit(q).expect("admitted").wait();
        match outcome {
            Err(ServeError::DeadlineExceeded { partial }) => {
                assert!(
                    partial.degradation.source_lost || partial.degradation.probes_skipped > 0,
                    "deadline must surface as degradation: {:#?}",
                    partial.degradation
                );
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let final_stats = server.shutdown();
        assert_eq!(final_stats.deadline_missed, 1);
        assert_eq!(final_stats.completed, 0);
    }

    #[test]
    fn shutdown_serves_everything_admitted() {
        let (system, db, queries) = system_and_db();
        let server = QueryServer::start(
            system,
            db,
            ServeConfig {
                workers: 2,
                queue_capacity: 32,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..12)
            .filter_map(|i| queries.get(i % queries.len()))
            .map(|q| server.submit(q.clone()).expect("admitted"))
            .collect();
        let final_stats = server.shutdown();
        assert_eq!(final_stats.admitted, 12);
        assert_eq!(final_stats.completed + final_stats.deadline_missed, 12);
        assert_eq!(
            final_stats.replies_dropped, 0,
            "every ticket is still held, so no reply may be dropped"
        );
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn reconfiguration_applies_to_later_queries() {
        let (system, db, queries) = system_and_db();
        let server = QueryServer::start(
            system,
            db,
            ServeConfig {
                workers: 1,
                queue_capacity: 8,
                ..ServeConfig::default()
            },
        );
        let q = queries.first().expect("queries").clone();
        let before = server.submit(q.clone()).expect("admitted").wait();
        let before = before.expect("served").answer;
        assert_eq!(server.engine_config().top_k, 10);
        let mut cfg = server.engine_config();
        cfg.top_k = 3;
        server.set_engine_config(cfg);
        assert_eq!(server.engine_config().top_k, 3);
        let after = server.submit(q).expect("admitted").wait();
        let after = after.expect("served").answer;
        assert!(after.answers.len() <= 3, "top_k=3 must cap the answers");
        assert!(before.answers.len() >= after.answers.len());
        server.shutdown();
    }

    #[test]
    fn racing_shutdown_drops_no_admitted_replies() {
        let (system, db, queries) = system_and_db();
        let server = QueryServer::start(
            system,
            db,
            ServeConfig {
                workers: 2,
                queue_capacity: 8,
                ..ServeConfig::default()
            },
        );
        // Three submitters race the close: whatever they get admitted
        // must still be served; the rest must be refused with a typed
        // error, never silently dropped.
        let tickets: Vec<Ticket> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|t| {
                    let server = &server;
                    let queries = &queries;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..8 {
                            let q = queries[(t + i) % queries.len()].clone();
                            if let Ok(ticket) = server.submit(q) {
                                mine.push(ticket);
                            }
                        }
                        mine
                    })
                })
                .collect();
            server.close();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter thread"))
                .collect()
        });
        for ticket in tickets {
            assert!(
                ticket.wait().is_ok(),
                "an admitted ticket must be served even across close()"
            );
        }
        let final_stats = server.shutdown();
        assert_eq!(
            final_stats.replies_dropped, 0,
            "shutdown must drain in-flight tickets before snapshotting: {final_stats:#?}"
        );
        assert_eq!(
            final_stats.completed + final_stats.deadline_missed,
            final_stats.admitted,
            "every admitted query is served exactly once: {final_stats:#?}"
        );
    }

    /// A database whose first probe blocks until the test's gate opens
    /// (the sender is dropped), so a ticket can be abandoned while its
    /// query is deterministically still in flight.
    struct GatedDb<D> {
        inner: D,
        gate: std::sync::Mutex<std::sync::mpsc::Receiver<()>>,
    }

    impl<D: WebDatabase> WebDatabase for GatedDb<D> {
        fn schema(&self) -> &Schema {
            self.inner.schema()
        }

        fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
            // Blocks until the test drops the sender; every later probe
            // sees the disconnect error immediately and sails through.
            let _ = self.gate.lock().expect("gate lock").recv();
            self.inner.try_query(query)
        }

        fn stats(&self) -> AccessStats {
            self.inner.stats()
        }

        fn reset_stats(&self) {
            self.inner.reset_stats()
        }
    }

    #[test]
    fn abandoned_ticket_is_counted_not_swallowed() {
        let (system, _, queries) = system_and_db();
        let (hold, gate) = std::sync::mpsc::channel::<()>();
        let db: Arc<dyn WebDatabase> = Arc::new(GatedDb {
            inner: InMemoryWebDb::new(CarDb::generate(600, 7)),
            gate: std::sync::Mutex::new(gate),
        });
        let server = QueryServer::start(
            system,
            db,
            ServeConfig {
                workers: 1,
                queue_capacity: 4,
                ..ServeConfig::default()
            },
        );
        let q = queries.first().expect("queries").clone();
        let ticket = server.submit(q).expect("admitted");
        // The lone worker is now (or soon) parked inside the gated
        // probe. Abandon the ticket first, then open the gate: the
        // worker finishes the query and finds nobody waiting.
        drop(ticket);
        drop(hold);
        let final_stats = server.shutdown();
        assert_eq!(final_stats.admitted, 1);
        assert_eq!(final_stats.completed + final_stats.deadline_missed, 1);
        assert_eq!(
            final_stats.replies_dropped, 1,
            "the abandoned reply must be counted: {final_stats:#?}"
        );
    }
}
