//! Full used-car walkthrough: probe an autonomous source through its Web
//! interface, inspect every mined artifact (AFDs, approximate keys,
//! attribute ordering, supertuple-based value similarities) and answer a
//! few imprecise queries — the end-to-end pipeline of the paper's
//! Figure 1.
//!
//! ```text
//! cargo run --release --example used_cars
//! ```

use aimq_suite::afd::TaneConfig;
use aimq_suite::catalog::{ImpreciseQuery, Value};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, EngineConfig, TrainConfig};
use aimq_suite::storage::{InMemoryWebDb, WebDatabase};

fn main() {
    let db = InMemoryWebDb::new(CarDb::generate(50_000, 7));
    let schema = db.schema().clone();

    // -- Data Collector: probe through the boolean Web interface with
    //    spanning queries over Make (the form's select box).
    let makes = CarDb::spanning_makes();
    let system = AimqSystem::probe_and_train(
        &db,
        schema.attr_id("Make").unwrap(),
        &makes,
        10_000,
        3,
        &TrainConfig {
            tane: TaneConfig::default(),
            ..TrainConfig::default()
        },
    )
    .expect("probing succeeds");
    let probe_stats = db.stats();
    println!(
        "probed {} tuples with {} spanning queries",
        probe_stats.tuples_returned, probe_stats.queries_issued
    );

    // -- Dependency Miner: what did TANE find?
    let mined = system.mined();
    println!(
        "\nmined {} AFDs and {} approximate keys (Terr = {})",
        mined.afds().len(),
        mined.keys().len(),
        TaneConfig::default().error_threshold
    );
    println!("strongest AFDs:");
    let mut afds: Vec<_> = mined.afds().iter().collect();
    afds.sort_by(|a, b| {
        a.error
            .total_cmp(&b.error)
            .then(a.lhs.len().cmp(&b.lhs.len()))
    });
    for afd in afds.iter().take(5) {
        println!(
            "  {} → {}  (support {:.3})",
            afd.lhs.display_with(&schema),
            schema.attr_name(afd.rhs),
            afd.support()
        );
    }
    if let Some(best) = mined.best_key() {
        println!(
            "best approximate key: {} (quality {:.3})",
            best.attrs.display_with(&schema),
            best.quality()
        );
    }

    // -- Attribute ordering (Algorithm 2).
    println!("\nattribute importance (Wimp):");
    let ordering = system.ordering();
    for &attr in ordering.relaxation_order() {
        println!(
            "  relax #{}: {:10}  Wimp={:.4}  Wtdepends={:.3}  Wtdecides={:.3}",
            ordering.relax_position(attr),
            schema.attr_name(attr),
            ordering.importance(attr),
            ordering.wt_depends(attr),
            ordering.wt_decides(attr),
        );
    }

    // -- Similarity Miner: who is Camry-like? Kia-like?
    println!("\nmined value similarities:");
    for (attr_name, value) in [("Model", "Camry"), ("Make", "Kia"), ("Year", "1995")] {
        let attr = schema.attr_id(attr_name).unwrap();
        if let Some(matrix) = system.model().matrix(attr) {
            let top = matrix.top_similar(value, 3);
            let rendered: Vec<String> = top.iter().map(|(v, s)| format!("{v} ({s:.3})")).collect();
            println!("  {attr_name}={value} ~ {}", rendered.join(", "));
        }
    }

    // -- Query Engine: a few imprecise queries.
    let queries = [
        ("family sedan around $9k", {
            ImpreciseQuery::builder(&schema)
                .like("Model", Value::cat("Camry"))
                .unwrap()
                .like("Price", Value::num(9_000.0))
                .unwrap()
                .build()
                .unwrap()
        }),
        ("cheap recent economy car", {
            ImpreciseQuery::builder(&schema)
                .like("Model", Value::cat("Civic"))
                .unwrap()
                .like("Year", Value::cat("2003"))
                .unwrap()
                .like("Price", Value::num(7_000.0))
                .unwrap()
                .build()
                .unwrap()
        }),
        ("a Ford truck like the F150", {
            ImpreciseQuery::builder(&schema)
                .like("Make", Value::cat("Ford"))
                .unwrap()
                .like("Model", Value::cat("F150"))
                .unwrap()
                .build()
                .unwrap()
        }),
    ];

    for (label, query) in queries {
        db.reset_stats();
        let result = system.answer(
            &db,
            &query,
            &EngineConfig {
                t_sim: 0.5,
                top_k: 5,
                ..EngineConfig::default()
            },
        );
        println!(
            "\n[{label}] {} → {} answers ({} tuples examined):",
            query.display_with(&schema),
            result.answers.len(),
            result.stats.tuples_examined
        );
        for answer in &result.answers {
            println!(
                "  sim={:.3}  {}",
                answer.similarity,
                answer.tuple.display_with(&schema)
            );
        }
    }
}
