//! Relevance feedback in action (the extension planned in the paper's
//! conclusion): a user keeps telling the system which of its answers are
//! actually relevant, and the attribute weights adapt.
//!
//! Here the simulated user only cares about **price and year** — they
//! judge answers by those alone — while the mined weights emphasize other
//! attributes. Watch the tuner recover the user's priorities.
//!
//! ```text
//! cargo run --release --example relevance_feedback
//! ```

use aimq_suite::catalog::{AttrId, ImpreciseQuery, Tuple};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, EngineConfig, FeedbackTuner, TrainConfig};
use aimq_suite::storage::{InMemoryWebDb, WebDatabase};

/// What this user actually cares about: price and year proximity.
fn user_likes(query: &Tuple, answer: &Tuple) -> bool {
    let price = |t: &Tuple| t.value(AttrId(3)).as_num().unwrap_or(0.0);
    let year = |t: &Tuple| {
        t.value(AttrId(2))
            .as_cat()
            .and_then(|y| y.parse::<i32>().ok())
            .unwrap_or(0)
    };
    let price_close = (price(query) - price(answer)).abs() / price(query).max(1.0) < 0.05;
    let year_close = (year(query) - year(answer)).abs() <= 1;
    price_close && year_close
}

fn main() {
    let db = InMemoryWebDb::new(CarDb::generate(30_000, 21));
    let schema = db.schema().clone();
    let sample = db.relation().random_sample(8_000, 1);
    let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();

    // A query tuple and a wide candidate pool.
    let query_tuple = db.relation().tuple(777);
    let query = ImpreciseQuery::from_tuple(&query_tuple).unwrap();
    println!("query: {}\n", query_tuple.display_with(&schema));

    let pool: Vec<Tuple> = system
        .answer(
            &db,
            &query,
            &EngineConfig {
                t_sim: 0.15,
                top_k: 60,
                max_relax_level: 3,
                target_relevant: Some(100),
                ..EngineConfig::default()
            },
        )
        .answers
        .into_iter()
        .map(|a| a.tuple)
        .filter(|t| *t != query_tuple)
        .collect();
    println!("candidate pool: {} tuples", pool.len());

    let mut tuner = FeedbackTuner::new(system.model(), 0.5);
    for round in 0..=5 {
        let ranked = tuner.rerank(system.model(), &query, &pool);
        let liked = ranked
            .iter()
            .take(10)
            .filter(|a| user_likes(&query_tuple, &a.tuple))
            .count();
        let weights: Vec<String> = schema
            .attr_ids()
            .map(|a| format!("{}={:.2}", schema.attr_name(a), tuner.weight(a)))
            .collect();
        println!(
            "round {round}: {liked}/10 liked | weights: {}",
            weights.join(" ")
        );

        // The user judges this round's top-10.
        for answer in ranked.iter().take(10) {
            let relevant = user_likes(&query_tuple, &answer.tuple);
            tuner.observe(system.model(), &query, &answer.tuple, relevant);
        }
    }

    let mined_price = system
        .ordering()
        .normalized_importance(&schema.attr_ids().collect::<Vec<_>>())[3];
    println!(
        "\nPrice weight: {mined_price:.2} (mined prior) → {:.2} (after feedback)",
        tuner.weight(AttrId(3)),
    );
}
