//! Domain-independence demo on CensusDB (the paper's Section 6.5): train
//! AIMQ on person records with no car-specific tuning, answer the paper's
//! sample query `Q' :- CensusDB(Education like Bachelors, Hours-per-week
//! like 40)`, and check whether nearest answers share the income class of
//! comparable people.
//!
//! ```text
//! cargo run --release --example census_income
//! ```

use aimq_suite::catalog::{ImpreciseQuery, Value};
use aimq_suite::data::{CensusDb, IncomeClass};
use aimq_suite::engine::{AimqSystem, EngineConfig, TrainConfig};
use aimq_suite::storage::InMemoryWebDb;
use std::collections::HashMap;

fn main() {
    let (relation, classes) = CensusDb::generate(20_000, 11);
    let schema = relation.schema().clone();
    let class_of: HashMap<_, _> = relation
        .rows()
        .map(|r| (relation.tuple(r), classes[r as usize]))
        .collect();
    let db = InMemoryWebDb::new(relation);

    // Same pipeline as CarDB — nothing census-specific beyond bucket
    // widths for the numeric attributes.
    let sample = db.relation().random_sample(6_000, 1);
    let system = AimqSystem::train(&sample, &TrainConfig::default()).expect("sample is non-empty");

    let ordering = system.ordering();
    println!("mined relaxation order over {}:", schema.name());
    for &attr in ordering.relaxation_order() {
        println!(
            "  relax #{:2}: {}",
            ordering.relax_position(attr),
            schema.attr_name(attr)
        );
    }

    // The paper's example query.
    let query = ImpreciseQuery::builder(&schema)
        .like("Education", Value::cat("Bachelors"))
        .unwrap()
        .like("Hours-per-week", Value::num(40.0))
        .unwrap()
        .build()
        .unwrap();
    println!("\nquery: {}", query.display_with(&schema));

    let result = system.answer(
        &db,
        &query,
        &EngineConfig {
            t_sim: 0.4,
            top_k: 10,
            max_relax_level: 2,
            ..EngineConfig::default()
        },
    );

    println!("top answers (with hidden income class):");
    for answer in &result.answers {
        let income = match class_of.get(&answer.tuple) {
            Some(IncomeClass::Above50K) => ">50K",
            Some(IncomeClass::AtMost50K) => "<=50K",
            None => "?",
        };
        println!(
            "  sim={:.3} [{}] {}",
            answer.similarity,
            income,
            answer.tuple.display_with(&schema)
        );
    }

    // Similar education levels, mined from co-occurrence alone.
    let edu = schema.attr_id("Education").unwrap();
    if let Some(matrix) = system.model().matrix(edu) {
        let top = matrix.top_similar("Bachelors", 3);
        let rendered: Vec<String> = top.iter().map(|(v, s)| format!("{v} ({s:.3})")).collect();
        println!("\nEducation=Bachelors ~ {}", rendered.join(", "));
    }
}
