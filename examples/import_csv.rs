//! Run AIMQ on your own data: export a relation to CSV, reload it, and
//! train the full pipeline on the loaded copy. Swap the generated file
//! for any CSV matching your schema (header row of attribute names;
//! empty fields are NULL) to query a real dataset imprecisely.
//!
//! ```text
//! cargo run --release --example import_csv
//! ```

use aimq_suite::catalog::{ImpreciseQuery, Schema, Value};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, EngineConfig, TrainConfig};
use aimq_suite::storage::{read_csv, write_csv, InMemoryWebDb};
use std::io::BufReader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Export: any relation serializes to plain CSV.
    let original = CarDb::generate(5_000, 3);
    let path = std::env::temp_dir().join("aimq_cars.csv");
    let mut file = std::fs::File::create(&path)?;
    write_csv(&original, &mut file)?;
    println!("wrote {} tuples to {}", original.len(), path.display());

    // 2. Import: declare the schema (attribute names + domains), load.
    let schema = Schema::builder("CarDB")
        .categorical("Make")
        .categorical("Model")
        .categorical("Year")
        .numeric("Price")
        .numeric("Mileage")
        .categorical("Location")
        .categorical("Color")
        .build()?;
    let loaded = read_csv(&schema, BufReader::new(std::fs::File::open(&path)?))?;
    println!("loaded {} tuples back", loaded.len());
    assert_eq!(original.len(), loaded.len());

    // 3. Train and query — the pipeline neither knows nor cares that the
    //    data came through a file.
    let db = InMemoryWebDb::new(loaded);
    let sample = db.relation().random_sample(2_000, 1);
    let system = AimqSystem::train(&sample, &TrainConfig::default())?;

    let query = ImpreciseQuery::builder(&schema)
        .like("Model", Value::cat("Civic"))
        .unwrap()
        .like("Price", Value::num(7_000.0))
        .unwrap()
        .build()?;
    let result = system.answer(
        &db,
        &query,
        &EngineConfig {
            t_sim: 0.5,
            top_k: 5,
            ..EngineConfig::default()
        },
    );
    println!("\n{} →", query.display_with(&schema));
    for a in &result.answers {
        println!(
            "  sim={:.3} {}",
            a.similarity,
            a.tuple.display_with(&schema)
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
