//! Quickstart: answer the paper's running example —
//! `Q :- CarDB(Model like Camry, Price like 10000)` —
//! over an autonomous used-car database.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aimq_suite::afd::BucketConfig;
use aimq_suite::catalog::{AttrId, BucketSpec, ImpreciseQuery, Value};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, EngineConfig, TrainConfig};
use aimq_suite::storage::{InMemoryWebDb, WebDatabase};

fn main() {
    // An autonomous Web database: 20,000 used-car listings reachable only
    // through boolean selection queries.
    let db = InMemoryWebDb::new(CarDb::generate(20_000, 42));
    println!(
        "source relation: {} ({} tuples)",
        db.schema(),
        db.relation().len()
    );

    // Offline phase: collect a sample and mine attribute importance +
    // value similarities. No user input, no domain knowledge.
    let sample = db.relation().random_sample(5_000, 1);
    let schema = db.schema().clone();
    let bucket = BucketConfig::for_schema(&schema)
        .with_spec(schema.attr_id("Price").unwrap(), BucketSpec::width(2_000.0))
        .with_spec(
            schema.attr_id("Mileage").unwrap(),
            BucketSpec::width(10_000.0),
        );
    let system = AimqSystem::train(
        &sample,
        &TrainConfig {
            bucket: Some(bucket),
            ..TrainConfig::default()
        },
    )
    .expect("sample is non-empty");

    let order: Vec<&str> = system
        .ordering()
        .relaxation_order()
        .iter()
        .map(|&a| schema.attr_name(a))
        .collect();
    println!("mined relaxation order (least important first): {order:?}");

    // The user's imprecise query: a Camry-like sedan around $10,000.
    let query = ImpreciseQuery::builder(&schema)
        .like("Model", Value::cat("Camry"))
        .unwrap()
        .like("Price", Value::num(10_000.0))
        .unwrap()
        .build()
        .unwrap();
    println!("\nquery: {}", query.display_with(&schema));

    let result = system.answer(
        &db,
        &query,
        &EngineConfig {
            t_sim: 0.5,
            top_k: 10,
            ..EngineConfig::default()
        },
    );

    println!(
        "base query used: {} ({} base tuples, {} relevant found, {} tuples examined)\n",
        result.base_query.display_with(&schema),
        result.base_set_size,
        result.stats.relevant_found,
        result.stats.tuples_examined,
    );
    println!("top answers:");
    for (i, answer) in result.answers.iter().enumerate() {
        println!(
            "{:2}. sim={:.3}  {}",
            i + 1,
            answer.similarity,
            answer.tuple.display_with(&schema)
        );
    }

    let models: Vec<&str> = result
        .answers
        .iter()
        .filter_map(|a| a.tuple.value(AttrId(1)).as_cat())
        .collect();
    println!("\nmodels suggested: {models:?}");

    // The paper's motivation: the system *knows* which models are
    // Camry-like without anyone telling it — mined purely from value
    // co-occurrence. Exact Camry matches dominate the top-10 here because
    // the database has plenty; tighten the budget or ask for a rarer car
    // and the similar models surface in the answers too.
    let model_attr = schema.attr_id("Model").unwrap();
    if let Some(matrix) = system.model().matrix(model_attr) {
        let similar: Vec<String> = matrix
            .top_similar("Camry", 3)
            .into_iter()
            .map(|(v, s)| format!("{v} ({s:.3})"))
            .collect();
        println!("mined Camry-like models: {}", similar.join(", "));
    }
}
