//! Head-to-head comparison of the three query-answering approaches the
//! paper evaluates: AFD-guided relaxation (AIMQ), random relaxation, and
//! the ROCK-cluster-based answerer — on the same imprecise query, with
//! the latent oracle scoring each answer list.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use aimq_suite::afd::{BucketConfig, EncodedRelation};
use aimq_suite::catalog::{ImpreciseQuery, Tuple};
use aimq_suite::data::{car_oracle_similarity, CarDb};
use aimq_suite::engine::{AimqSystem, EngineConfig, GuidedRelax, RandomRelax, TrainConfig};
use aimq_suite::rock::{RockConfig, RockModel};
use aimq_suite::storage::{InMemoryWebDb, WebDatabase};

fn main() {
    let db = InMemoryWebDb::new(CarDb::generate(30_000, 5));
    let schema = db.schema().clone();

    // Train both AIMQ variants on the same probe sample.
    let sample = db.relation().random_sample(8_000, 1);
    let mined_system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
    let uniform_system = AimqSystem::train(
        &sample,
        &TrainConfig {
            use_uniform_importance: true,
            ..TrainConfig::default()
        },
    )
    .unwrap();

    // Fit ROCK on the full relation (2k clustering sample + labeling).
    let enc = EncodedRelation::encode(db.relation(), &BucketConfig::for_schema(&schema));
    let rock = RockModel::fit(
        &enc,
        RockConfig {
            theta: 0.22,
            target_clusters: 30,
            sample_size: 2_000,
            seed: 2,
            min_cluster_size: 1,
        },
    );

    // The query: a specific car from the database, used as an imprecise
    // "find me cars like this one" request.
    let query_row = 12_345.min(db.relation().len() as u32 - 1);
    let query_tuple = db.relation().tuple(query_row);
    let query = ImpreciseQuery::from_tuple(&query_tuple).unwrap();
    println!("query tuple: {}\n", query_tuple.display_with(&schema));

    let config = EngineConfig {
        t_sim: 0.4,
        top_k: 10,
        max_relax_level: 3,
        ..EngineConfig::default()
    };

    let show = |label: &str, answers: &[Tuple]| {
        let oracle_avg: f64 = if answers.is_empty() {
            0.0
        } else {
            answers
                .iter()
                .map(|t| car_oracle_similarity(&schema, &query_tuple, t))
                .sum::<f64>()
                / answers.len() as f64
        };
        println!(
            "{label}: {} answers, oracle similarity {oracle_avg:.3}",
            answers.len()
        );
        for t in answers.iter().take(5) {
            println!(
                "  oracle={:.3}  {}",
                car_oracle_similarity(&schema, &query_tuple, t),
                t.display_with(&schema)
            );
        }
        println!();
    };

    // 1. AIMQ: mined importance + guided relaxation.
    let mut guided = GuidedRelax::new(mined_system.ordering().clone());
    let answers: Vec<Tuple> = mined_system
        .answer_with_strategy(&db, &query, &config, &mut guided)
        .answers
        .into_iter()
        .map(|a| a.tuple)
        .filter(|t| *t != query_tuple)
        .collect();
    show("GuidedRelax (AIMQ)", &answers);

    // 2. RandomRelax with uniform importance (the paper's strawman).
    let mut random = RandomRelax::new(9);
    let answers: Vec<Tuple> = uniform_system
        .answer_with_strategy(&db, &query, &config, &mut random)
        .answers
        .into_iter()
        .map(|a| a.tuple)
        .filter(|t| *t != query_tuple)
        .collect();
    show("RandomRelax (uniform importance)", &answers);

    // 3. ROCK: answers come from the query tuple's cluster.
    let answers: Vec<Tuple> = rock
        .answer(query_row, 10)
        .into_iter()
        .map(|(row, _)| db.relation().tuple(row))
        .collect();
    show("ROCK (cluster members)", &answers);
}
