//! Offline stub of `bytes`.
//!
//! Implements the [`Buf`]/[`BufMut`] trait surface that the
//! `aimq::persist` binary codec uses — little-endian integer/float
//! reads and writes over `Vec<u8>` (writer) and `&[u8]` (reader).
//! Semantics match upstream `bytes` for these methods, including
//! panicking on under-length reads; `persist` guards every read with
//! an explicit `remaining()` check first.

/// Read side: a cursor over immutable bytes. Stub of `bytes::Buf`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Advance the cursor by `n` bytes. Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);

    /// Copy `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write side: an append-only byte sink. Stub of `bytes::BufMut`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(300);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_f64_le(0.125);
        out.put_slice(b"abc");

        let mut r: &[u8] = &out;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 0.125);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips_bytes() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
