//! Offline stub of `criterion`.
//!
//! Implements the benchmark-definition surface the AIMQ bench crate
//! uses (`benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`, `black_box`) over a plain wall-clock timing
//! loop. No statistics, plots, or baselines — it reports the mean
//! iteration time so `cargo bench` stays usable offline.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (upstream now forwards to
/// `std::hint` as well).
pub use std::hint::black_box;

/// Benchmark registry/driver. Stub of `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id, 20, f);
        self
    }
}

/// A named group sharing configuration. Stub of
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (upstream flushes reports; here a no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group. Stub of
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Timing handle passed to benchmark closures. Stub of
/// `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total += start.elapsed();
    }
}

fn run_one<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one sample costs ~5ms,
    // so cheap routines are not swamped by timer noise.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            total: Duration::ZERO,
        };
        f(&mut b);
        if b.total >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut timed: u64 = 0;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            total: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 && b.total < best {
            best = b.total;
        }
        total += b.total;
        timed += b.iters;
    }
    let mean = if timed > 0 {
        total.as_nanos() as f64 / timed as f64
    } else {
        0.0
    };
    let best_per = if iters > 0 && best != Duration::MAX {
        best.as_nanos() as f64 / iters as f64
    } else {
        0.0
    };
    println!("{id:<40} mean {mean:>12.1} ns/iter   best {best_per:>12.1} ns/iter");
}

/// Group several benchmark functions under one entry point. Stub of
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the named groups. Stub of
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
