//! Offline stub of `serde`.
//!
//! Provides just enough surface for the AIMQ workspace to compile
//! without crates.io access: the `Serialize`/`Deserialize` trait names
//! and the derive macros (re-exported from the stub `serde_derive`,
//! where they expand to nothing). No serializer ever runs — model
//! persistence uses the explicit binary codec in `aimq::persist`.

/// Marker stand-in for `serde::Serialize`. Never implemented or
/// required by the workspace; exists so `use serde::Serialize` and
/// generic bounds keep compiling.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

/// Minimal `serde::de` namespace for code that names it in paths.
pub mod de {
    pub use crate::Deserialize;
}

/// Minimal `serde::ser` namespace for code that names it in paths.
pub mod ser {
    pub use crate::Serialize;
}
