//! Offline stub of `serde_derive`.
//!
//! The build container has no crates.io access, so the real derive
//! macros are replaced by no-ops: the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking decoration
//! and never calls a serde serializer (persistence goes through the
//! hand-rolled codec in `aimq::persist`). Expanding to an empty token
//! stream keeps every annotated type compiling without generating
//! impls nobody consumes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
