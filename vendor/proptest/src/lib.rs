//! Offline stub of `proptest`.
//!
//! The container cannot reach crates.io, so this crate reimplements
//! the slice of proptest the AIMQ test suite uses: the [`proptest!`]
//! macro, `prop_assert*` macros, [`test_runner::ProptestConfig`],
//! integer/float range strategies, tuple strategies,
//! [`collection::vec`], `prop_map`, [`strategy::Just`], and a crude
//! string strategy for patterns like `".{1,20}"`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs verbatim.
//! - **Deterministic exploration.** Cases derive from an FNV hash of
//!   the test's module path + name, so every run replays the same
//!   inputs — failures are reproducible without a regression file.
//! - **`.proptest-regressions` files are not consumed.** They stay in
//!   version control as documentation of past shrunk failures (the
//!   deterministic runner has no persistence to replay them with).

pub mod test_runner {
    //! Config, error type and the deterministic case RNG.

    use rand::{RngCore, SeedableRng};

    /// Stub of `proptest::test_runner::ProptestConfig`: only the case
    /// count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the full workspace
            // suite fast in CI while still exercising the invariants.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property within a test case. Stub of
    /// `proptest::test_runner::TestCaseError`.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-test RNG: seeded from the test's fully
    /// qualified name so distinct tests explore distinct inputs but
    /// every run replays the same stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// RNG for the test named `name` (use
        /// `concat!(module_path!(), "::", stringify!(test_fn))`).
        pub fn for_test(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(hash),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// Stub of `proptest::strategy::Strategy`: a recipe for sampling
    /// one value. No shrinking, so `generate` is the whole contract.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Sample one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String strategies: upstream interprets `&str` as a regex. This
    /// stub honors the one shape the workspace uses — `.{lo,hi}` —
    /// generating `lo..=hi` chars drawn from a printable set that
    /// deliberately includes CSV-hostile characters (quotes, commas,
    /// newlines are excluded by `.` in regex, so not newlines).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            const ALPHABET: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', ',', '"', '\'', ';', '.', '-', '_', 'é',
                'λ', '中', '😀',
            ];
            (0..len)
                .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
                .collect()
        }
    }

    /// Extract `(lo, hi)` from a `".{lo,hi}"`-shaped pattern.
    fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Sample a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// `Vec` strategy: `size` elements of `element`. Stub of
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` module alias from upstream's prelude
    /// (`prop::collection::vec(...)` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Property-test entry point. Stub of `proptest::proptest!`: expands
/// each `fn name(pat in strategy, ...) { body }` into a `#[test]`
/// runner looping over deterministic random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let __vals = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng) ,)+
                    );
                    let __repr = format!("{:?}", __vals);
                    let ( $($arg ,)+ ) = __vals;
                    let __run = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(__e) = __run() {
                        panic!(
                            "proptest case {}/{} failed: {}\n    inputs: {}",
                            __case + 1,
                            __cfg.cases,
                            __e,
                            __repr
                        );
                    }
                }
            }
        )*
    };
}

/// Fallible property assertion; fails the current case (not the whole
/// process) so the runner can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Inequality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(xs in prop::collection::vec(0u32..10, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn tuple_and_string_strategies(t in (0u8..3, ".{1,20}", 0.0f64..1.0)) {
            prop_assert!(t.0 < 3);
            prop_assert!(!t.1.is_empty() && t.1.chars().count() <= 20);
            prop_assert!((0.0..1.0).contains(&t.2));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u32..100, 5..10);
        let a: Vec<_> = {
            let mut rng = TestRng::for_test("fixed-name");
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::for_test("fixed-name");
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
