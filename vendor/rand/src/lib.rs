//! Offline stub of `rand` 0.10.
//!
//! The container cannot reach crates.io, so this crate reimplements the
//! small slice of the `rand` API the AIMQ workspace actually uses:
//!
//! - [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`]
//! - [`RngExt::random`] (for `f64`, `u32`, `u64`, `bool`)
//! - [`RngExt::random_range`] over integer and float ranges
//! - [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`]
//!
//! `StdRng` here is SplitMix64 — statistically solid for the synthetic
//! dataset generators and simulated-user sampling in this repo, and
//! fully deterministic per seed, which is what the mining-determinism
//! tests rely on. The stream differs from upstream `rand`'s ChaCha12
//! `StdRng`, so seeds produce different (but equally reproducible)
//! corpora than a crates.io build would.

/// A source of 64-bit random words. Stub of `rand_core::RngCore`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Stub of `rand::SeedableRng`, supporting only
/// the `seed_from_u64` constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per
                // draw, far below anything the generators can detect.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty random_range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods. Stub of `rand::RngExt` (the 0.9+
/// renaming of the old `Rng` extension trait).
pub trait RngExt: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Legacy alias: pre-0.9 code paths name the extension trait `Rng`.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stub of
    /// `rand::rngs::StdRng`; same name, different (but reproducible)
    /// stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): passes BigCrush,
            // one add + two xorshift-multiplies per word.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Offset by the golden-gamma and burn a few words so the
            // small consecutive seeds the suite uses decorrelate.
            let mut rng = StdRng {
                state: seed ^ 0x9E3779B97F4A7C15_u64,
            };
            for _ in 0..5 {
                rng.next_u64();
            }
            rng
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{RngCore, RngExt};

    /// Stub of `rand::seq::SliceRandom`: in-place Fisher–Yates shuffle
    /// plus uniform element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SliceRandom;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..5 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_hits_all_buckets() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
