//! End-to-end guarantees of the concurrent serving runtime:
//!
//! 1. **overload pinning** — with queue capacity K and W gated workers,
//!    offering W + K + M queries admits exactly W + K and rejects
//!    exactly M with a typed `Overloaded`; nothing is silently dropped,
//!    and after the gate lifts every admitted query is served;
//! 2. **deadline pinning** — a query that exhausts its probe-tick
//!    budget returns `DeadlineExceeded` carrying the engine's partial
//!    answer and a populated `DegradationReport`;
//! 3. **concurrent = serial** — N worker threads replaying shuffled
//!    slices of a query log through one shared striped `CachedWebDb`
//!    produce byte-identical per-query answers to a serial replay, and
//!    (property-tested) this holds across fault profiles when the fault
//!    layer runs in *keyed* mode, where each probe's fate is a pure
//!    function of `(seed, canonical query)` rather than arrival order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use aimq_suite::catalog::{ImpreciseQuery, Schema, SelectionQuery};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, AnswerSet, EngineConfig, TrainConfig};
use aimq_suite::serve::{QueryServer, ServeConfig, ServeError, Ticket};
use aimq_suite::storage::{
    AccessStats, CachedWebDb, FaultInjectingWebDb, FaultProfile, InMemoryWebDb, QueryError,
    QueryPage, Relation, WebDatabase,
};
use proptest::prelude::*;

struct Harness {
    relation: Relation,
    system: Arc<AimqSystem>,
    queries: Vec<ImpreciseQuery>,
}

fn harness() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| {
        let relation = CarDb::generate(1200, 19);
        let sample = relation.random_sample(500, 3);
        let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
        let queries: Vec<ImpreciseQuery> = (0..6u32)
            .map(|i| ImpreciseQuery::from_tuple(&relation.tuple(i * 83)).unwrap())
            .collect();
        Harness {
            relation,
            system: Arc::new(system),
            queries,
        }
    })
}

fn config() -> EngineConfig {
    EngineConfig {
        t_sim: 0.5,
        top_k: 10,
        ..EngineConfig::default()
    }
}

/// Answer-only fingerprint: ranked tuples with similarity bit patterns
/// and the base query. Meter-derived fields (`stats`, `retries`,
/// `breaker_trips`) are cross-worker aggregates under concurrency and
/// are deliberately excluded.
fn fingerprint(result: &AnswerSet) -> String {
    let answers: Vec<String> = result
        .answers
        .iter()
        .map(|a| {
            format!(
                "{:?}@{:016x}:{:?}",
                a.tuple,
                a.similarity.to_bits(),
                a.provenance
            )
        })
        .collect();
    format!(
        "base={:?} n={} | {}",
        result.base_query,
        result.base_set_size,
        answers.join(";")
    )
}

/// A source whose probes block until the test opens the gate — lets
/// overload tests hold all workers mid-query deterministically.
struct GatedWebDb {
    inner: InMemoryWebDb,
    open: Mutex<bool>,
    bell: Condvar,
    waiting: AtomicUsize,
}

impl GatedWebDb {
    fn new(inner: InMemoryWebDb) -> Self {
        GatedWebDb {
            inner,
            open: Mutex::new(false),
            bell: Condvar::new(),
            waiting: AtomicUsize::new(0),
        }
    }

    fn open_gate(&self) {
        *self.open.lock().unwrap() = true;
        self.bell.notify_all();
    }

    /// Spin until `n` probes are parked on the gate.
    fn await_waiters(&self, n: usize) {
        while self.waiting.load(Ordering::Acquire) < n {
            std::thread::yield_now();
        }
    }
}

impl WebDatabase for GatedWebDb {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn try_query(&self, query: &SelectionQuery) -> Result<QueryPage, QueryError> {
        let mut open = self.open.lock().unwrap();
        if !*open {
            self.waiting.fetch_add(1, Ordering::AcqRel);
            while !*open {
                open = self.bell.wait(open).unwrap();
            }
            self.waiting.fetch_sub(1, Ordering::AcqRel);
        }
        drop(open);
        self.inner.try_query(query)
    }

    fn stats(&self) -> AccessStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

#[test]
fn overload_rejects_exactly_the_excess_and_drops_nothing() {
    const WORKERS: usize = 2;
    const CAPACITY: usize = 3;
    const EXCESS: usize = 4;
    let h = harness();
    let gated = Arc::new(GatedWebDb::new(InMemoryWebDb::new(h.relation.clone())));
    let server = QueryServer::start(
        Arc::clone(&h.system),
        Arc::clone(&gated) as Arc<dyn WebDatabase>,
        ServeConfig {
            workers: WORKERS,
            queue_capacity: CAPACITY,
            engine: config(),
            ..ServeConfig::default()
        },
    );

    // Fill every in-service slot: W queries park on the gate.
    let q = &h.queries[0];
    let mut tickets: Vec<Ticket> = (0..WORKERS)
        .map(|_| server.submit(q.clone()).expect("worker slot"))
        .collect();
    gated.await_waiters(WORKERS);

    // Fill the queue behind them, then offer EXCESS more.
    for _ in 0..CAPACITY {
        tickets.push(server.submit(q.clone()).expect("queue slot"));
    }
    let mut rejected = 0;
    for _ in 0..EXCESS {
        match server.submit(q.clone()) {
            Err(ServeError::Overloaded) => rejected += 1,
            other => panic!("expected Overloaded, got {:?}", other.map(|_| "ticket")),
        }
    }
    assert_eq!(rejected, EXCESS, "every excess query rejected, typed");

    // Backpressure is recoverable: lift the gate, everything admitted
    // is served to completion.
    gated.open_gate();
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    let stats = server.shutdown();
    assert_eq!(stats.submitted, (WORKERS + CAPACITY + EXCESS) as u64);
    assert_eq!(stats.admitted, (WORKERS + CAPACITY) as u64);
    assert_eq!(stats.rejected, EXCESS as u64);
    assert_eq!(stats.completed, (WORKERS + CAPACITY) as u64);
}

#[test]
fn deadline_miss_is_a_typed_error_with_a_partial_report() {
    let h = harness();
    let db: Arc<dyn WebDatabase> = Arc::new(InMemoryWebDb::new(h.relation.clone()));
    let server = QueryServer::start(
        Arc::clone(&h.system),
        db,
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            deadline_ticks: 2,
            ticks_per_probe: 1,
            engine: config(),
            ..ServeConfig::default()
        },
    );
    match server.submit(h.queries[0].clone()).unwrap().wait() {
        Err(ServeError::DeadlineExceeded { partial }) => {
            let d = &partial.degradation;
            assert!(
                d.is_degraded(),
                "deadline must mark the answer degraded: {d:#?}"
            );
            assert!(
                d.source_lost || d.probes_skipped > 0 || d.probes_failed > 0,
                "the report must itemize the cut: {d:#?}"
            );
        }
        other => panic!("expected DeadlineExceeded, got {:?}", other.map(|_| "ok")),
    }
    let stats = server.shutdown();
    assert_eq!(stats.deadline_missed, 1);
}

#[test]
fn generous_deadline_changes_nothing() {
    let h = harness();
    // Reference: the plain single-threaded engine.
    let reference: Vec<String> = {
        let db = InMemoryWebDb::new(h.relation.clone());
        h.queries
            .iter()
            .map(|q| fingerprint(&h.system.answer(&db, q, &config())))
            .collect()
    };
    let db: Arc<dyn WebDatabase> = Arc::new(CachedWebDb::with_stripes(
        InMemoryWebDb::new(h.relation.clone()),
        1024,
        4,
    ));
    let server = QueryServer::start(
        Arc::clone(&h.system),
        db,
        ServeConfig {
            workers: 4,
            queue_capacity: 16,
            deadline_ticks: 1_000_000,
            ticks_per_probe: 1,
            engine: config(),
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<Ticket> = h
        .queries
        .iter()
        .map(|q| server.submit(q.clone()).expect("admitted"))
        .collect();
    for (t, expected) in tickets.into_iter().zip(&reference) {
        let outcome = t.wait().expect("well under deadline");
        assert_eq!(&fingerprint(&outcome.answer), expected);
    }
    server.shutdown();
}

// --- Satellite 3: concurrent replay == serial replay, across fault
// --- profiles, with the fault layer in keyed (order-independent) mode.

/// The shared stack of the concurrency property: striped cache over
/// keyed faults over the source. Keyed mode makes each probe's fate a
/// pure function of `(fault_seed, canonical query)`, so the stack's
/// observable behavior is independent of request interleaving. The
/// retry/breaker layer is deliberately absent here: its circuit breaker
/// and probe budget are *shared, order-dependent* state (consecutive
/// failures from different threads interleave differently), which is
/// exactly the kind of coupling this property forbids in the stack.
fn keyed_stack(profile: FaultProfile, fault_seed: u64) -> Arc<dyn WebDatabase> {
    Arc::new(CachedWebDb::with_stripes(
        FaultInjectingWebDb::keyed(
            InMemoryWebDb::new(harness().relation.clone()),
            profile,
            fault_seed,
        ),
        1024,
        4,
    ))
}

/// Replay `log` serially through `db`, one engine call per entry.
fn serial_replay(db: &dyn WebDatabase, log: &[&ImpreciseQuery]) -> Vec<String> {
    let h = harness();
    log.iter()
        .map(|q| fingerprint(&h.system.answer(db, q, &config())))
        .collect()
}

/// Replay `log` with `threads` workers, each taking a round-robin slice
/// shuffled by `shuffle_seed`; returns per-log-position fingerprints.
fn concurrent_replay(
    db: &Arc<dyn WebDatabase>,
    log: &[&ImpreciseQuery],
    threads: usize,
    shuffle_seed: u64,
) -> Vec<String> {
    let h = harness();
    let results: Vec<Mutex<String>> = log.iter().map(|_| Mutex::new(String::new())).collect();
    let results = Arc::new(results);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = Arc::clone(db);
            let results = Arc::clone(&results);
            let mut slice: Vec<(usize, &ImpreciseQuery)> = log
                .iter()
                .enumerate()
                .filter(|(i, _)| i % threads == t)
                .map(|(i, q)| (i, *q))
                .collect();
            // Deterministic per-thread shuffle: rotate by a seed-derived
            // amount, then reverse on odd seeds — enough to decorrelate
            // arrival order from log order without an RNG.
            let n = slice.len().max(1);
            slice.rotate_left((shuffle_seed as usize).wrapping_add(t) % n);
            if (shuffle_seed ^ t as u64) & 1 == 1 {
                slice.reverse();
            }
            scope.spawn(move || {
                for (i, q) in slice {
                    let fp = fingerprint(&h.system.answer(&*db, q, &config()));
                    *results[i].lock().unwrap() = fp;
                }
            });
        }
    });
    results.iter().map(|m| m.lock().unwrap().clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N threads replaying shuffled slices of the log through one
    /// shared cache+faults stack answer byte-identically to a serial
    /// replay of the same log on an identically-built stack — for
    /// every fault profile.
    #[test]
    fn concurrent_replay_matches_serial_across_fault_profiles(
        fault_seed in 0u64..=u64::MAX,
        shuffle_seed in 0u64..=u64::MAX,
        profile_idx in 0usize..3,
        threads in 2usize..=4,
    ) {
        let profile = [FaultProfile::none(), FaultProfile::flaky(), FaultProfile::hostile()]
            [profile_idx];
        let h = harness();
        // Two passes over every query: the second pass exercises the
        // cross-call cache under contention.
        let log: Vec<&ImpreciseQuery> = h.queries.iter().chain(h.queries.iter()).collect();

        let serial = serial_replay(&*keyed_stack(profile, fault_seed), &log);
        let concurrent =
            concurrent_replay(&keyed_stack(profile, fault_seed), &log, threads, shuffle_seed);
        prop_assert_eq!(serial, concurrent);
    }
}
