//! Cross-crate property tests on the mining pipeline: invariants that
//! must hold for *any* relation, checked on randomly generated corpora.

use aimq_suite::afd::{
    AttrSet, AttributeOrdering, BucketConfig, EncodedRelation, MinedDependencies, TaneConfig,
};
use aimq_suite::catalog::{AttrId, Schema, Tuple, Value};
use aimq_suite::storage::Relation;
use proptest::prelude::*;

/// Random small relation over 4 categorical attributes with controlled
/// domain sizes.
fn arb_relation() -> impl Strategy<Value = Relation> {
    let schema = || {
        Schema::builder("R")
            .categorical("A")
            .categorical("B")
            .categorical("C")
            .categorical("D")
            .build()
            .unwrap()
    };
    prop::collection::vec((0u32..4, 0u32..3, 0u32..5, 0u32..2), 1..120).prop_map(move |rows| {
        let schema = schema();
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(a, b, c, d)| {
                Tuple::new(
                    &schema,
                    vec![
                        Value::cat(format!("a{a}")),
                        Value::cat(format!("b{b}")),
                        Value::cat(format!("c{c}")),
                        Value::cat(format!("d{d}")),
                    ],
                )
                .unwrap()
            })
            .collect();
        Relation::from_tuples(schema, &tuples).unwrap()
    })
}

fn mine(relation: &Relation, threshold: f64) -> MinedDependencies {
    let enc = EncodedRelation::encode(relation, &BucketConfig::for_schema(relation.schema()));
    MinedDependencies::mine(
        &enc,
        &TaneConfig {
            error_threshold: threshold,
            max_lhs_size: 3,
            max_key_size: 4,
            prune_superkeys: false,
        },
    )
}

/// Brute-force g3 error of X→A on a relation.
fn brute_afd_error(relation: &Relation, lhs: AttrSet, rhs: AttrId) -> f64 {
    use std::collections::HashMap;
    let n = relation.len();
    if n == 0 {
        return 0.0;
    }
    let mut groups: HashMap<Vec<String>, HashMap<String, usize>> = HashMap::new();
    for t in relation.tuples() {
        let key: Vec<String> = lhs.iter().map(|a| t.value(a).to_string()).collect();
        let v = t.value(rhs).to_string();
        *groups.entry(key).or_default().entry(v).or_default() += 1;
    }
    let removed: usize = groups
        .values()
        .map(|counts| {
            let total: usize = counts.values().sum();
            total - counts.values().copied().max().unwrap_or(0)
        })
        .sum();
    removed as f64 / n as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mined_afd_errors_match_brute_force(relation in arb_relation()) {
        let mined = mine(&relation, 0.6);
        for afd in mined.afds().iter().take(30) {
            let brute = brute_afd_error(&relation, afd.lhs, afd.rhs);
            prop_assert!(
                (afd.error - brute).abs() < 1e-9,
                "AFD {:?}→{:?}: mined {} brute {}",
                afd.lhs, afd.rhs, afd.error, brute
            );
        }
    }

    #[test]
    fn mined_keys_respect_distinct_counts(relation in arb_relation()) {
        let mined = mine(&relation, 0.6);
        for key in mined.keys().iter().take(30) {
            // error = (n - distinct)/n by definition of g3 for keys.
            let mut projections: Vec<Vec<String>> = relation
                .tuples()
                .map(|t| key.attrs.iter().map(|a| t.value(a).to_string()).collect())
                .collect();
            projections.sort();
            projections.dedup();
            let expected = (relation.len() - projections.len()) as f64 / relation.len() as f64;
            prop_assert!((key.error - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn widening_the_threshold_only_adds_dependencies(relation in arb_relation()) {
        let tight = mine(&relation, 0.1);
        let loose = mine(&relation, 0.5);
        for afd in tight.afds() {
            prop_assert!(
                loose.afds().iter().any(|l| l.lhs == afd.lhs && l.rhs == afd.rhs),
                "AFD lost when widening threshold"
            );
        }
        for key in tight.keys() {
            prop_assert!(loose.keys().iter().any(|l| l.attrs == key.attrs));
        }
    }

    #[test]
    fn ordering_covers_schema_exactly_once(relation in arb_relation()) {
        let mined = mine(&relation, 0.4);
        let ordering = AttributeOrdering::derive(relation.schema(), &mined).unwrap();
        let mut order: Vec<usize> = ordering
            .relaxation_order()
            .iter()
            .map(|a| a.index())
            .collect();
        order.sort_unstable();
        prop_assert_eq!(order, vec![0, 1, 2, 3]);
        // Deciding and dependent partition the schema.
        let all = AttrSet::from_attrs(relation.schema().attr_ids());
        prop_assert_eq!(ordering.deciding().union(ordering.dependent()), all);
        prop_assert!(ordering.deciding().intersect(ordering.dependent()).is_empty());
    }

    #[test]
    fn normalized_importance_is_a_distribution(relation in arb_relation()) {
        let mined = mine(&relation, 0.4);
        let ordering = AttributeOrdering::derive(relation.schema(), &mined).unwrap();
        let attrs: Vec<AttrId> = relation.schema().attr_ids().collect();
        let w = ordering.normalized_importance(&attrs);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {}", sum);
        prop_assert!(w.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }
}
