//! Drives `cargo xtask lint` (via the `xtask` library) against the
//! fixture trees under `tests/fixtures/lint/`. Each seeded tree plants
//! exactly one kind of violation; the clean tree must pass outright.
//!
//! The fixtures are workspace-shaped (`<root>/crates/<name>/src/*.rs`)
//! so `lint_root` applies the same crate-scoped rule selection it uses
//! on the real repo: `catalog` gets the panic/float-ordering rules,
//! `afd` additionally gets the determinism rule.

use std::path::{Path, PathBuf};

use xtask::{lint_root, LintReport, Severity};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/lint")
        .join(name)
}

fn lint(name: &str) -> LintReport {
    lint_root(&fixture(name)).unwrap_or_else(|e| panic!("linting fixture `{name}`: {e}"))
}

fn rules_of(report: &LintReport, severity: Severity) -> Vec<&str> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == severity)
        .map(|d| d.rule.as_str())
        .collect()
}

#[test]
fn clean_fixture_passes() {
    let report = lint("clean");
    assert_eq!(
        report.errors(),
        0,
        "clean tree must produce no errors: {:#?}",
        report.diagnostics
    );
    assert_eq!(
        report.warnings(),
        0,
        "clean tree must produce no warnings: {:#?}",
        report.diagnostics
    );
    assert!(!report.failed(false));
    assert!(!report.failed(true), "clean even under --deny-warnings");
}

#[test]
fn panic_fixture_fails_with_panic_rule() {
    let report = lint("panic");
    assert!(report.failed(false));
    assert_eq!(rules_of(&report, Severity::Error), vec!["panic"]);
    let diag = &report.diagnostics[0];
    assert!(diag.message.contains(".unwrap()"), "{diag:#?}");
    assert!(diag.path.starts_with("crates/catalog"), "{diag:#?}");
}

#[test]
fn float_ordering_fixture_fails_with_float_rule() {
    let report = lint("float_ordering");
    assert!(report.failed(false));
    assert_eq!(rules_of(&report, Severity::Error), vec!["float-ordering"]);
    // `.unwrap_or(...)` on the same expression must NOT also trip the
    // panic rule — only the bare `.unwrap()`/`.expect(` forms panic.
    assert_eq!(report.errors(), 1, "{:#?}", report.diagnostics);
}

#[test]
fn hashmap_fixture_fails_only_in_determinism_crates() {
    let report = lint("hashmap");
    assert!(report.failed(false));
    let errors = rules_of(&report, Severity::Error);
    assert!(!errors.is_empty());
    assert!(errors.iter().all(|r| *r == "hashmap"), "{errors:?}");
    // `afd` is a determinism crate; `catalog` holds an identical
    // HashMap use as a control and must stay silent.
    for diag in &report.diagnostics {
        assert!(
            diag.path.starts_with("crates/afd"),
            "hashmap flagged outside the determinism crates: {diag:#?}"
        );
    }
}

#[test]
fn wallclock_fixture_fails_only_in_determinism_crates() {
    let report = lint("wallclock");
    assert!(report.failed(false));
    let errors = rules_of(&report, Severity::Error);
    // The afd fixture plants an `Instant::now()`, a `thread::sleep(`,
    // a `.elapsed()` readout and a `SystemTime::now()`; the justified
    // stopwatch is suppressed.
    assert_eq!(errors, vec!["wallclock"; 4], "{:#?}", report.diagnostics);
    // `catalog` holds a bare `Instant::now()` plus the method-call
    // decoys (`clock.now()`) as controls and must stay silent.
    for diag in &report.diagnostics {
        assert!(
            diag.path.starts_with("crates/afd"),
            "wallclock flagged outside the determinism crates: {diag:#?}"
        );
    }
}

#[test]
fn bad_allow_fixture_rejects_malformed_directives() {
    let report = lint("bad_allow");
    assert!(report.failed(false));
    let errors = rules_of(&report, Severity::Error);
    // One unjustified allow + one unknown-rule allow, and since neither
    // directive is well-formed-and-matching, both unwraps still fire.
    assert_eq!(
        errors.iter().filter(|r| **r == "lint-allow").count(),
        2,
        "{:#?}",
        report.diagnostics
    );
    assert_eq!(
        errors.iter().filter(|r| **r == "panic").count(),
        2,
        "malformed allows must not suppress the violation they sit on: {:#?}",
        report.diagnostics
    );
    let messages: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("justification")),
        "{messages:#?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("unknown rule `pannic`")),
        "{messages:#?}"
    );
}

#[test]
fn real_workspace_is_lint_clean() {
    // The repo itself must satisfy its own invariants with zero
    // unsuppressed findings — CI runs `--deny-warnings`, so warn-level
    // `indexing` sites must each carry a justified allow.
    let report = lint_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint workspace");
    assert!(
        report.diagnostics.is_empty(),
        "workspace lint findings: {:#?}",
        report.diagnostics
    );
    assert!(!report.failed(true));
}

#[test]
fn checked_in_wire_schema_inventory_is_current() {
    // `results/WIRE_SCHEMA.json` is the reviewed wire contract; a new
    // or renamed JSON key must show up in the diff of that file, never
    // slide onto the wire silently. Regenerate with
    // `cargo xtask pin --write` (or `wire --write`).
    let rendered =
        xtask::wire_inventory(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("scan workspace");
    let checked_in = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("results/WIRE_SCHEMA.json"),
    )
    .expect("results/WIRE_SCHEMA.json exists");
    assert_eq!(
        checked_in, rendered,
        "wire schema drifted; regenerate with `cargo xtask pin --write` \
         and review the diff"
    );
}

#[test]
fn probe_free_crates_have_empty_probing_sets() {
    // The L8 fixpoint is the proof: `afd`, `sim`, `rock` and `catalog`
    // are pure in-memory layers, and no function in them may reach
    // `WebDatabase::try_query` — not even transitively through storage
    // helpers. An empty set here is a workspace invariant, not luck.
    let summary =
        xtask::probe_summary(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("scan workspace");
    for crate_name in ["afd", "catalog", "rock", "sim"] {
        let probing = summary
            .probing_by_crate
            .get(crate_name)
            .map(|fns| fns.iter().cloned().collect::<Vec<_>>())
            .unwrap_or_default();
        assert!(
            probing.is_empty(),
            "crate `{crate_name}` must stay probe-free, but these functions \
             can reach `try_query`: {probing:?}"
        );
    }
}

#[test]
fn checked_in_probe_entrypoint_list_is_current() {
    // `results/PROBE_ENTRYPOINTS.txt` is the reviewed probing surface;
    // a new probe path must show up in the diff of that file, never
    // slide in silently. Regenerate with `cargo xtask probes`.
    let summary =
        xtask::probe_summary(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("scan workspace");
    let rendered: String = summary
        .entries
        .iter()
        .map(|e| format!("{} {}\n", e.path.display(), e.fn_name))
        .collect();
    let checked_in = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("results/PROBE_ENTRYPOINTS.txt"),
    )
    .expect("results/PROBE_ENTRYPOINTS.txt exists");
    assert_eq!(
        checked_in, rendered,
        "probing surface drifted; regenerate with `cargo xtask probes > \
         results/PROBE_ENTRYPOINTS.txt` and review the diff"
    );
}
