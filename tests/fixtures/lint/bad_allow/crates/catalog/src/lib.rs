//! Malformed-suppression fixture: an allow with no justification and an
//! allow naming an unknown rule are both errors themselves.

/// Unjustified allow — flagged as `lint-allow`, and the unwrap stays
/// suppressed-but-unjustified.
pub fn head(xs: &[f64]) -> f64 {
    // aimq-lint: allow(panic)
    *xs.first().unwrap()
}

/// Unknown rule name in the directive — flagged as `lint-allow`.
pub fn tail(xs: &[f64]) -> f64 {
    // aimq-lint: allow(pannic) -- typo in the rule name
    *xs.last().unwrap()
}
