//! Control: `catalog` is not a determinism crate, so wall-clock use
//! here is NOT a violation (only the panic/ordering rules apply). The
//! method-call forms below must stay clean even in determinism crates.

use std::time::Instant;

/// Wall-clock read outside the determinism scope.
pub fn stamp() -> Instant {
    Instant::now()
}

/// Method calls named `now`/`sleep` on other receivers never match the
/// qualified-path rule.
pub fn virtual_time(clock: &crate_clock::VirtualClock) -> u64 {
    clock.now()
}

/// Stopwatch readout outside the determinism scope: silent.
pub fn readout(t0: &Instant) -> std::time::Duration {
    t0.elapsed()
}

pub mod crate_clock {
    /// Stand-in tick source for the control fixture.
    pub struct VirtualClock(pub u64);
    impl VirtualClock {
        /// Current tick.
        pub fn now(&self) -> u64 {
            self.0
        }
    }
}
