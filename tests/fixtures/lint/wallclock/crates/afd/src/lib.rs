//! L4 fixture: wall-clock reads and real sleeps in a determinism crate
//! (`afd` is under the determinism rule).

use std::time::{Duration, Instant, SystemTime};

/// Times a mining pass with the wall clock — the result depends on the
/// machine, not the data. Three violations: the `Instant::now()` read,
/// the real sleep, and the `.elapsed()` readout.
pub fn timed_pass() -> Duration {
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(1));
    t0.elapsed()
}

/// Calendar stamp: a pure function of the host clock, not the data.
pub fn stamped() -> SystemTime {
    SystemTime::now()
}

/// A suppressed read: offline stopwatch with a recorded justification.
pub fn excused_stopwatch() -> Instant {
    // aimq-lint: allow(wallclock) -- offline-only timing, never drives results
    Instant::now()
}
