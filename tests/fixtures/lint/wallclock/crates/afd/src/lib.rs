//! L4 fixture: wall-clock reads and real sleeps in a determinism crate
//! (`afd` is under the determinism rule).

use std::time::{Duration, Instant};

/// Times a mining pass with the wall clock — the result depends on the
/// machine, not the data.
pub fn timed_pass() -> Duration {
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(1));
    t0.elapsed()
}

/// A suppressed read: offline stopwatch with a recorded justification.
pub fn excused_stopwatch() -> Instant {
    // aimq-lint: allow(wallclock) -- offline-only timing, never drives results
    Instant::now()
}
