//! Clean fixture: library code that follows every rule.

/// Mean of `xs`, `None` when empty — errors propagate, nothing panics.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    Some(sum / xs.len() as f64)
}

/// Scores sorted descending with the NaN-safe total order.
pub fn rank(mut scored: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored
}

/// A justified suppression is not a violation.
pub fn head(xs: &[f64]) -> f64 {
    // aimq-lint: allow(panic) -- fixture: caller guarantees non-empty input
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap_and_index() {
        let xs = vec![1.0, 2.0];
        assert_eq!(mean(&xs).unwrap(), 1.5);
        assert_eq!(xs[0], 1.0);
    }
}
