//! L3 fixture: a hash container in a mining crate (`afd` is under the
//! determinism rule).

use std::collections::HashMap;

/// Counts occurrences — iteration order of the result is nondeterministic.
pub fn histogram(codes: &[u32]) -> HashMap<u32, u32> {
    let mut counts = HashMap::new();
    for &c in codes {
        *counts.entry(c).or_insert(0) += 1;
    }
    counts
}
