//! Control: `catalog` is not a determinism crate, so a hash container
//! here is NOT a violation (only the panic/ordering rules apply).

use std::collections::HashMap;

/// Lookup index; iteration order never reaches an output.
pub fn index(names: &[String]) -> HashMap<&str, usize> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect()
}
