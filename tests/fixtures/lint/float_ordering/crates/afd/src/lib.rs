//! L2 fixture: one seeded NaN-unsafe score comparison.

/// Sorts scores with `partial_cmp` — the seeded violation.
pub fn rank(mut scored: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
    });
    scored
}
