//! L1 fixture: one seeded panic-rule violation in library code.

/// The `.unwrap()` below is the seeded violation the fixture test
/// expects the linter to flag.
pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
