//! Fault-tolerance guarantees of the access layer + engine, end to end:
//!
//! 1. no fault profile or seed makes Algorithm 1 panic;
//! 2. an empty answer set under faults is always *marked*
//!    (`Completeness::Empty`), never passed off as a genuine miss;
//! 3. with 10% transient faults behind the default retry policy, top-k
//!    recall against the fault-free run stays ≥ 0.9 at identical seeds;
//! 4. fault schedules are replayable: the same `(profile, seed)` yields a
//!    byte-identical `DegradationReport` and identical top-k twice.

use std::sync::OnceLock;

use aimq_suite::catalog::ImpreciseQuery;
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, AnswerSet, Completeness, EngineConfig, TrainConfig};
use aimq_suite::storage::{
    FaultInjectingWebDb, FaultProfile, InMemoryWebDb, Relation, ResilientWebDb, RetryPolicy,
};
use proptest::prelude::*;

struct Harness {
    relation: Relation,
    system: AimqSystem,
    queries: Vec<ImpreciseQuery>,
}

fn harness() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| {
        let relation = CarDb::generate(1500, 17);
        let sample = relation.random_sample(600, 5);
        let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
        let queries: Vec<ImpreciseQuery> = (0..5u32)
            .map(|i| ImpreciseQuery::from_tuple(&relation.tuple(i * 97)).unwrap())
            .collect();
        Harness {
            relation,
            system,
            queries,
        }
    })
}

fn config() -> EngineConfig {
    EngineConfig {
        t_sim: 0.5,
        top_k: 10,
        ..EngineConfig::default()
    }
}

/// Answer `q` through a fresh fault-injection + resilience stack, so the
/// fault schedule restarts at ordinal zero every call.
fn answer_under(profile: FaultProfile, fault_seed: u64, q: &ImpreciseQuery) -> AnswerSet {
    let h = harness();
    let db = ResilientWebDb::new(
        FaultInjectingWebDb::new(InMemoryWebDb::new(h.relation.clone()), profile, fault_seed),
        RetryPolicy::default(),
    );
    h.system.answer(&db, q, &config())
}

/// Everything observable about a run, byte-exact (`f64` via `to_bits`).
fn fingerprint(result: &AnswerSet) -> String {
    let answers: Vec<String> = result
        .answers
        .iter()
        .map(|a| format!("{:?}@{:016x}", a.tuple, a.similarity.to_bits()))
        .collect();
    format!("{:?} | {}", result.degradation, answers.join(";"))
}

/// The completeness verdict must be consistent with what actually
/// happened — in particular an empty answer set under faults is `Empty`,
/// never an unmarked miss.
fn assert_honest(result: &AnswerSet) {
    let d = &result.degradation;
    let faulted =
        d.probes_failed > 0 || d.probes_skipped > 0 || d.truncated_pages > 0 || d.source_lost;
    match d.completeness {
        Completeness::Full => assert!(!faulted, "Full claimed despite faults: {d:?}"),
        Completeness::Partial => {
            assert!(faulted, "Partial without any fault: {d:?}");
            assert!(!result.answers.is_empty(), "Partial with no answers: {d:?}");
        }
        Completeness::Empty => {
            assert!(faulted, "Empty verdict without any fault: {d:?}");
            assert!(result.answers.is_empty(), "Empty with answers: {d:?}");
        }
    }
    if result.answers.is_empty() && faulted {
        assert_eq!(
            d.completeness,
            Completeness::Empty,
            "unmarked empty set: {d:?}"
        );
    }
}

#[test]
fn no_profile_and_no_seed_breaks_the_engine() {
    let h = harness();
    for profile_name in ["none", "flaky", "hostile"] {
        let profile = FaultProfile::by_name(profile_name).unwrap();
        for fault_seed in 0..6u64 {
            for q in &h.queries {
                let result = answer_under(profile, fault_seed, q);
                assert_honest(&result);
            }
        }
    }
}

#[test]
fn flaky_with_retries_keeps_recall_at_least_090() {
    let h = harness();
    let clean: Vec<Vec<String>> = h
        .queries
        .iter()
        .map(|q| {
            let db = InMemoryWebDb::new(h.relation.clone());
            let mut keys: Vec<String> = h
                .system
                .answer(&db, q, &config())
                .answers
                .iter()
                .map(|a| format!("{:?}", a.tuple))
                .collect();
            keys.sort();
            keys
        })
        .collect();

    let flaky = FaultProfile::flaky();
    let mut recalls = Vec::new();
    for fault_seed in 0..4u64 {
        for (q, expected) in h.queries.iter().zip(&clean) {
            if expected.is_empty() {
                continue;
            }
            let result = answer_under(flaky, fault_seed, q);
            let got: Vec<String> = result
                .answers
                .iter()
                .map(|a| format!("{:?}", a.tuple))
                .collect();
            let hit = expected.iter().filter(|k| got.contains(k)).count();
            recalls.push(hit as f64 / expected.len() as f64);
        }
    }
    let mean = recalls.iter().sum::<f64>() / recalls.len() as f64;
    assert!(
        mean >= 0.9,
        "mean top-k recall {mean:.3} under flaky+retries fell below 0.9"
    );
}

#[test]
fn dead_source_is_marked_empty() {
    let h = harness();
    let dead = FaultProfile {
        unavailable_probability: 1.0,
        ..FaultProfile::none()
    };
    let result = answer_under(dead, 1, &h.queries[0]);
    assert!(result.answers.is_empty());
    assert_eq!(result.degradation.completeness, Completeness::Empty);
    assert!(result.degradation.source_lost);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 4: fault schedules replay exactly. Two runs at the same
    /// `(profile, seed, query)` produce a byte-identical
    /// `DegradationReport` and identical top-k answers (similarities
    /// compared bit-for-bit).
    #[test]
    fn same_seed_replays_identically(
        fault_seed in 0u64..=u64::MAX,
        profile_idx in 0usize..3,
        query_idx in 0usize..5,
    ) {
        let profile = [FaultProfile::none(), FaultProfile::flaky(), FaultProfile::hostile()]
            [profile_idx];
        let q = &harness().queries[query_idx];
        let first = answer_under(profile, fault_seed, q);
        let second = answer_under(profile, fault_seed, q);
        prop_assert_eq!(fingerprint(&first), fingerprint(&second));
        assert_honest(&first);
    }
}
