//! End-to-end guarantees of the probe-economy layers (planner dedup +
//! memoizing query cache):
//!
//! 1. the cache is *transparent* per engine call: a fresh
//!    `Cached(Resilient(Fault(...)))` stack answers byte-identically to
//!    the same stack without the cache, for every fault profile and
//!    seed — same ranked answers (similarities bit-for-bit), same
//!    `DegradationReport`;
//! 2. on a clean source, a workload with repeated queries served
//!    through a persistent cache returns byte-identical rankings to the
//!    seed engine (no dedup, no cache) while issuing ≥ 40% fewer source
//!    queries — the ISSUE 3 acceptance floor;
//! 3. cache hits are free: they consume no probe budget and advance no
//!    fault-schedule ordinal (asserted at the storage layer; here the
//!    workload check pins the observable consequence — hit counters
//!    grow while issue counters do not).

use std::sync::OnceLock;

use aimq_suite::catalog::ImpreciseQuery;
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, AnswerSet, EngineConfig, TrainConfig};
use aimq_suite::storage::{
    CachedWebDb, FaultInjectingWebDb, FaultProfile, InMemoryWebDb, Relation, ResilientWebDb,
    RetryPolicy, WebDatabase,
};
use proptest::prelude::*;

struct Harness {
    relation: Relation,
    system: AimqSystem,
    queries: Vec<ImpreciseQuery>,
}

fn harness() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| {
        let relation = CarDb::generate(1500, 17);
        let sample = relation.random_sample(600, 5);
        let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
        let queries: Vec<ImpreciseQuery> = (0..5u32)
            .map(|i| ImpreciseQuery::from_tuple(&relation.tuple(i * 97)).unwrap())
            .collect();
        Harness {
            relation,
            system,
            queries,
        }
    })
}

fn config() -> EngineConfig {
    EngineConfig {
        t_sim: 0.5,
        top_k: 10,
        ..EngineConfig::default()
    }
}

fn resilient_stack(
    profile: FaultProfile,
    fault_seed: u64,
) -> ResilientWebDb<FaultInjectingWebDb<InMemoryWebDb>> {
    ResilientWebDb::new(
        FaultInjectingWebDb::new(
            InMemoryWebDb::new(harness().relation.clone()),
            profile,
            fault_seed,
        ),
        RetryPolicy::default(),
    )
}

/// Answer `q` through a fresh uncached stack (fault schedule restarts at
/// ordinal zero).
fn answer_plain(profile: FaultProfile, fault_seed: u64, q: &ImpreciseQuery) -> AnswerSet {
    harness()
        .system
        .answer(&resilient_stack(profile, fault_seed), q, &config())
}

/// Answer `q` through the same fresh stack with the memoizing cache
/// outermost.
fn answer_cached(profile: FaultProfile, fault_seed: u64, q: &ImpreciseQuery) -> AnswerSet {
    let db = CachedWebDb::with_default_capacity(resilient_stack(profile, fault_seed));
    harness().system.answer(&db, q, &config())
}

/// Everything observable about a run, byte-exact (`f64` via `to_bits`).
fn fingerprint(result: &AnswerSet) -> String {
    let answers: Vec<String> = result
        .answers
        .iter()
        .map(|a| format!("{:?}@{:016x}", a.tuple, a.similarity.to_bits()))
        .collect();
    format!("{:?} | {}", result.degradation, answers.join(";"))
}

/// Ranked answers only (tuples + similarity bits), without degradation.
fn ranking(result: &AnswerSet) -> Vec<String> {
    result
        .answers
        .iter()
        .map(|a| format!("{:?}@{:016x}", a.tuple, a.similarity.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Guarantee 1: per engine call, cache on vs cache off is
    /// byte-identical — identical `AnswerSet` ranking and identical
    /// `DegradationReport` — for every fault profile and fault seed.
    #[test]
    fn cache_is_transparent_per_call(
        fault_seed in 0u64..=u64::MAX,
        profile_idx in 0usize..3,
        query_idx in 0usize..5,
    ) {
        let profile = [FaultProfile::none(), FaultProfile::flaky(), FaultProfile::hostile()]
            [profile_idx];
        let q = &harness().queries[query_idx];
        let plain = answer_plain(profile, fault_seed, q);
        let cached = answer_cached(profile, fault_seed, q);
        prop_assert_eq!(fingerprint(&plain), fingerprint(&cached));
    }
}

/// Guarantees 2 and 3: a repeated-query workload on a clean source,
/// answered through one persistent cached stack, ranks byte-identically
/// to the seed engine (dedup off, no cache) while issuing ≥ 40% fewer
/// source queries, and the saving is visible in the cache meters.
#[test]
fn clean_workload_meets_the_reduction_floor_with_identical_rankings() {
    let h = harness();
    let seed_config = EngineConfig {
        dedup_probes: false,
        ..config()
    };

    // Seed engine over two passes of the query log.
    let baseline_db = resilient_stack(FaultProfile::none(), 3);
    let mut baseline_rankings = Vec::new();
    for _pass in 0..2 {
        for q in &h.queries {
            baseline_rankings.push(ranking(&h.system.answer(&baseline_db, q, &seed_config)));
        }
    }
    let baseline_issued = baseline_db.stats().queries_issued;

    // Dedup + persistent cross-call cache over the same log.
    let cached_db = CachedWebDb::with_default_capacity(resilient_stack(FaultProfile::none(), 3));
    let mut cached_rankings = Vec::new();
    for _pass in 0..2 {
        for q in &h.queries {
            cached_rankings.push(ranking(&h.system.answer(&cached_db, q, &config())));
        }
    }
    let stats = cached_db.stats();

    assert_eq!(
        baseline_rankings, cached_rankings,
        "cache+dedup changed a ranking on the clean source"
    );
    assert!(
        stats.cache_hits > 0,
        "the second pass must be served from memory: {stats:?}"
    );
    assert!(baseline_issued > 0, "workload issued nothing");
    let reduction = 1.0 - stats.queries_issued as f64 / baseline_issued as f64;
    assert!(
        reduction >= 0.4,
        "cache+dedup cut only {:.1}% of {} baseline probes (issued {})",
        reduction * 100.0,
        baseline_issued,
        stats.queries_issued
    );
}

/// The cached stack never *worsens* the probe bill, whatever the
/// profile: over a repeated workload its source-issue count stays at or
/// below the seed engine's at identical fault seeds.
#[test]
fn cached_stack_never_issues_more_than_the_seed_engine() {
    let h = harness();
    let seed_config = EngineConfig {
        dedup_probes: false,
        ..config()
    };
    for profile in [
        FaultProfile::none(),
        FaultProfile::flaky(),
        FaultProfile::hostile(),
    ] {
        let baseline_db = resilient_stack(profile, 11);
        for _pass in 0..2 {
            for q in &h.queries {
                h.system.answer(&baseline_db, q, &seed_config);
            }
        }
        let baseline_issued = baseline_db.stats().queries_issued;

        let cached_db = CachedWebDb::with_default_capacity(resilient_stack(profile, 11));
        for _pass in 0..2 {
            for q in &h.queries {
                h.system.answer(&cached_db, q, &config());
            }
        }
        let cached_issued = cached_db.stats().queries_issued;
        assert!(
            cached_issued <= baseline_issued,
            "cache inflated the bill under {profile:?}: {cached_issued} > {baseline_issued}"
        );
    }
}
