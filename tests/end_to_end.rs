//! End-to-end integration tests: the full AIMQ pipeline (probe → mine →
//! order → estimate → answer) over the synthetic corpora, spanning every
//! crate in the workspace.

use aimq_suite::catalog::{AttrId, ImpreciseQuery, Value};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, EngineConfig, GuidedRelax, RandomRelax, TrainConfig};
use aimq_suite::storage::{InMemoryWebDb, WebDatabase};

fn car_db(n: usize, seed: u64) -> InMemoryWebDb {
    InMemoryWebDb::new(CarDb::generate(n, seed))
}

fn train(db: &InMemoryWebDb, sample: usize) -> AimqSystem {
    let sample = db.relation().random_sample(sample, 1);
    AimqSystem::train(&sample, &TrainConfig::default()).expect("non-empty sample")
}

#[test]
fn paper_running_example_returns_ranked_relevant_answers() {
    let db = car_db(8_000, 42);
    let system = train(&db, 2_000);
    let schema = db.schema().clone();

    let query = ImpreciseQuery::builder(&schema)
        .like("Model", Value::cat("Camry"))
        .unwrap()
        .like("Price", Value::num(10_000.0))
        .unwrap()
        .build()
        .unwrap();
    let result = system.answer(
        &db,
        &query,
        &EngineConfig {
            t_sim: 0.5,
            top_k: 10,
            ..EngineConfig::default()
        },
    );

    assert!(!result.answers.is_empty(), "the example query must answer");
    // Descending ranking, similarity in [0, 1].
    for w in result.answers.windows(2) {
        assert!(w[0].similarity >= w[1].similarity);
    }
    for a in &result.answers {
        assert!((0.0..=1.0 + 1e-9).contains(&a.similarity));
        // Every answer satisfies nothing in particular syntactically —
        // that's the point of imprecise answering — but Camrys must rank
        // at the very top since exact matches exist.
    }
    assert_eq!(
        result.answers[0].tuple.value(AttrId(1)).as_cat(),
        Some("Camry")
    );
}

#[test]
fn base_query_generalizes_until_nonempty() {
    let db = car_db(4_000, 7);
    let system = train(&db, 1_000);
    let schema = db.schema().clone();

    // Unknown model: the exact base query is empty, so the engine must
    // generalize Qpr along the mined order (paper footnote 2) until the
    // price band alone yields a base set.
    let query = ImpreciseQuery::builder(&schema)
        .like("Model", Value::cat("DeLorean"))
        .unwrap()
        .like("Price", Value::num(8_000.0))
        .unwrap()
        .build()
        .unwrap();
    let result = system.answer(&db, &query, &EngineConfig::default());
    assert!(
        result.base_set_size > 0,
        "generalization should recover a base set"
    );
    assert!(result.base_query.bound_attrs().len() < 2);
}

#[test]
fn every_relaxation_query_passes_through_the_boolean_interface() {
    let db = car_db(4_000, 9);
    let system = train(&db, 1_000);
    let schema = db.schema().clone();

    db.reset_stats();
    let query = ImpreciseQuery::builder(&schema)
        .like("Make", Value::cat("Honda"))
        .unwrap()
        .like("Price", Value::num(8_000.0))
        .unwrap()
        .build()
        .unwrap();
    let result = system.answer(&db, &query, &EngineConfig::default());

    let stats = db.stats();
    assert_eq!(stats.queries_issued, result.stats.queries_issued);
    assert_eq!(stats.tuples_returned, result.stats.tuples_extracted);
    assert!(stats.queries_issued >= 1);
}

#[test]
fn guided_and_random_agree_on_relevance_but_not_cost() {
    let db = car_db(8_000, 21);
    let system = train(&db, 2_000);
    let query = ImpreciseQuery::from_tuple(&db.relation().tuple(100)).expect("non-null tuple");
    let config = EngineConfig {
        t_sim: 0.7,
        top_k: 10,
        max_relax_level: 3,
        target_relevant: Some(15),
        ..EngineConfig::default()
    };

    let mut guided = GuidedRelax::new(system.ordering().clone());
    let g = system.answer_with_strategy(&db, &query, &config, &mut guided);

    let mut random = RandomRelax::new(5);
    let r = system.answer_with_strategy(&db, &query, &config, &mut random);

    // Both find relevant tuples for an in-database query tuple.
    assert!(g.stats.relevant_found > 0);
    assert!(r.stats.relevant_found > 0);
    // The exact tuple itself is always among guided answers (sim 1).
    assert!((g.answers[0].similarity - 1.0).abs() < 1e-9);
}

#[test]
fn deterministic_end_to_end_given_seeds() {
    let run = || {
        let db = car_db(3_000, 3);
        let system = train(&db, 800);
        let query = ImpreciseQuery::from_tuple(&db.relation().tuple(42)).unwrap();
        let result = system.answer(&db, &query, &EngineConfig::default());
        result
            .answers
            .iter()
            .map(|a| format!("{:?}:{:.6}", a.tuple, a.similarity))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn probing_pipeline_matches_direct_sampling_quality() {
    let db = car_db(6_000, 13);
    let schema = db.schema().clone();
    let makes = CarDb::spanning_makes();
    let probed = AimqSystem::probe_and_train(
        &db,
        schema.attr_id("Make").unwrap(),
        &makes,
        1_500,
        1,
        &TrainConfig::default(),
    )
    .expect("probing succeeds");

    // The probed system produces the same structural conclusions as the
    // direct-sample system: Make more dependent than Model.
    let make = schema.attr_id("Make").unwrap();
    let model = schema.attr_id("Model").unwrap();
    assert!(probed.ordering().wt_depends(make) > probed.ordering().wt_depends(model));
}
