//! End-to-end guarantees of the federation layer (ISSUE 7):
//!
//! 1. **merge determinism** — the fault-free federated top-k over K
//!    overlapping fragments is byte-identical to the single-source
//!    top-k on the union relation: same ranked tuples, similarity bit
//!    patterns and provenance, and the same `DegradationReport` up to
//!    the per-source breakdown (proptest across source counts,
//!    replication factors and query choice);
//! 2. **recall-bounded degradation** — with faulty members the answer
//!    may lose tuples, but every loss is *reported*: recall < 1.0
//!    implies a degraded completeness verdict, never a silent `Full`
//!    (proptest across fault profiles and seeds);
//! 3. **the acceptance configuration** — 8 sources, 2 hostile, 2-way
//!    replication: completeness is `Partial`-at-worst (never `Empty`),
//!    recall vs the fault-free federated run stays ≥ 0.9, and hedged
//!    probes are visible in the per-source breakdown;
//! 4. **serving** — the federated database is `Send + Sync` behind the
//!    same `Arc<dyn WebDatabase>`, and the concurrent server answers
//!    byte-identically to the single-threaded engine over it.
//!
//! The single-source baseline uses a *value-sorted, deduplicated* union
//! relation: the federator merges pages in canonical value order after
//! dedup by tuple identity, so the baseline must present the same page
//! order (`InMemoryWebDb` pages follow row order) and the same tuple
//! multiplicity (the federation collapses duplicates; one source holding
//! two identical rows would not).
//!
//! CI runs this file once per federation-matrix cell; the cell's shape
//! comes from `AIMQ_FED_SOURCES` / `AIMQ_FED_FAILED` (defaults 4 / 1).

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use aimq_suite::catalog::{ImpreciseQuery, Value};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, AnswerSet, Completeness, EngineConfig, TrainConfig};
use aimq_suite::serve::{QueryServer, ServeConfig, Ticket};
use aimq_suite::storage::{
    FaultProfile, FederatedWebDb, FederationPolicy, InMemoryWebDb, Relation, SourceSpec,
    WebDatabase,
};
use proptest::prelude::*;

struct Harness {
    relation: Relation,
    system: AimqSystem,
    queries: Vec<ImpreciseQuery>,
}

fn harness() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| {
        // Value-sorted, deduplicated union relation (see module docs).
        let raw = CarDb::generate(900, 11);
        let mut by_values: BTreeMap<Vec<Value>, aimq_suite::catalog::Tuple> = BTreeMap::new();
        for row in raw.rows() {
            let tuple = raw.tuple(row);
            by_values.entry(tuple.values().to_vec()).or_insert(tuple);
        }
        let tuples: Vec<aimq_suite::catalog::Tuple> = by_values.into_values().collect();
        let relation = Relation::from_tuples(raw.schema().clone(), &tuples).unwrap();

        let sample = relation.random_sample(400, 5);
        let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
        let step = (relation.len() / 4).max(1) as u32;
        let queries: Vec<ImpreciseQuery> = (0..4u32)
            .map(|i| ImpreciseQuery::from_tuple(&relation.tuple(i * step)).unwrap())
            .collect();
        Harness {
            relation,
            system,
            queries,
        }
    })
}

fn config() -> EngineConfig {
    EngineConfig {
        t_sim: 0.5,
        top_k: 10,
        ..EngineConfig::default()
    }
}

/// Specs for `n` members with `hostile_at` running the hostile profile.
fn specs(n: usize, hostile_at: &[usize], fault_seed: u64) -> Vec<SourceSpec> {
    (0..n)
        .map(|i| SourceSpec {
            profile: if hostile_at.contains(&i) {
                FaultProfile::hostile()
            } else {
                FaultProfile::none()
            },
            fault_seed: fault_seed.wrapping_add(i as u64),
            ..SourceSpec::benign(format!("s{i}"))
        })
        .collect()
}

/// Ranked answers, byte-exact: tuple, similarity bits, provenance.
fn ranking(result: &AnswerSet) -> Vec<String> {
    result
        .answers
        .iter()
        .map(|a| {
            format!(
                "{:?}@{:016x}:{:?}",
                a.tuple,
                a.similarity.to_bits(),
                a.provenance
            )
        })
        .collect()
}

/// Order-insensitive top-k answer keys, for recall.
fn answer_keys(result: &AnswerSet) -> Vec<String> {
    let mut keys: Vec<String> = result
        .answers
        .iter()
        .map(|a| format!("{:?}", a.tuple))
        .collect();
    keys.sort();
    keys
}

fn recall(expected: &[String], got: &[String]) -> f64 {
    if expected.is_empty() {
        return 1.0;
    }
    let hit = expected.iter().filter(|k| got.contains(k)).count();
    hit as f64 / expected.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Guarantee 1: fault-free federated == single-source, byte for
    /// byte, across source counts, replication factors and queries.
    #[test]
    fn fault_free_federated_topk_is_byte_identical_to_single_source(
        sources in 1usize..=6,
        replication in 1usize..=3,
        query_idx in 0usize..4,
    ) {
        let h = harness();
        let q = &h.queries[query_idx];
        let baseline = h.system.answer(&InMemoryWebDb::new(h.relation.clone()), q, &config());

        let fed = FederatedWebDb::shard(
            &h.relation,
            &specs(sources, &[], 7),
            replication,
            FederationPolicy::default(),
        )
        .unwrap();
        let federated = h.system.answer(&fed, q, &config());

        prop_assert_eq!(ranking(&baseline), ranking(&federated));
        prop_assert_eq!(&baseline.base_query, &federated.base_query);
        prop_assert_eq!(baseline.base_set_size, federated.base_set_size);
        // Identical degradation up to the per-source breakdown, which
        // only the federation can populate.
        let mut flattened = federated.degradation.clone();
        prop_assert_eq!(
            flattened.sources.len(),
            sources,
            "one health row per member"
        );
        flattened.sources.clear();
        prop_assert_eq!(&flattened, &baseline.degradation);
        prop_assert_eq!(flattened.completeness, Completeness::Full);
    }

    /// Guarantee 2: under member faults, any recall loss against the
    /// fault-free federated run is reported as degradation — never a
    /// silent `Full`.
    #[test]
    fn faulty_members_degrade_loudly_never_silently(
        fault_seed in 0u64..=u64::MAX,
        hostile_member in 0usize..4,
        query_idx in 0usize..4,
    ) {
        let h = harness();
        let q = &h.queries[query_idx];
        let clean_fed = FederatedWebDb::shard(
            &h.relation,
            &specs(4, &[], fault_seed),
            2,
            FederationPolicy::default(),
        )
        .unwrap();
        let expected = answer_keys(&h.system.answer(&clean_fed, q, &config()));

        let faulty_fed = FederatedWebDb::shard(
            &h.relation,
            &specs(4, &[hostile_member], fault_seed),
            2,
            FederationPolicy::default(),
        )
        .unwrap();
        let result = h.system.answer(&faulty_fed, q, &config());

        let got = answer_keys(&result);
        if recall(&expected, &got) < 1.0 {
            prop_assert!(
                result.degradation.is_degraded(),
                "lost answers with completeness=Full: {:?}",
                result.degradation
            );
        }
        // The per-source breakdown always covers every member.
        prop_assert_eq!(result.degradation.sources.len(), 4);
    }
}

/// Guarantee 3: the ISSUE 7 acceptance configuration — 8 sources, 2
/// hostile (spread so a fragment and its only replica never die
/// together), 2-way replication. Partial at worst, recall ≥ 0.9,
/// hedges visible in the breakdown.
#[test]
fn eight_sources_two_hostile_stay_partial_with_recall_090() {
    let h = harness();
    let clean_fed = FederatedWebDb::shard(
        &h.relation,
        &specs(8, &[], 42),
        2,
        FederationPolicy::default(),
    )
    .unwrap();
    let hostile_fed = FederatedWebDb::shard(
        &h.relation,
        &specs(8, &[0, 4], 42),
        2,
        FederationPolicy::default(),
    )
    .unwrap();

    let mut recalls = Vec::new();
    let mut hedges_fired = 0u64;
    let mut probes_failed = 0u64;
    for q in &h.queries {
        let expected = answer_keys(&h.system.answer(&clean_fed, q, &config()));
        let result = h.system.answer(&hostile_fed, q, &config());
        assert_ne!(
            result.degradation.completeness,
            Completeness::Empty,
            "overlap + hedging must keep answers flowing: {:?}",
            result.degradation
        );
        assert_eq!(result.degradation.sources.len(), 8);
        for source in &result.degradation.sources {
            hedges_fired += source.hedges_fired;
            probes_failed += source.probes_failed;
        }
        recalls.push(recall(&expected, &answer_keys(&result)));
    }
    let mean = recalls.iter().sum::<f64>() / recalls.len() as f64;
    assert!(
        mean >= 0.9,
        "mean recall {mean:.3} below the 0.9 acceptance floor ({recalls:?})"
    );
    assert!(
        hedges_fired > 0,
        "hostile members must trigger hedged probes (failed={probes_failed})"
    );
}

/// CI federation-matrix cell: shape from `AIMQ_FED_SOURCES` /
/// `AIMQ_FED_FAILED`. Uniform guarantee across the matrix: no panics,
/// honest completeness, a full per-source breakdown, and a perfect
/// answer whenever no member is hostile.
#[test]
fn federation_matrix_cell_degrades_gracefully() {
    let env_usize = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(default)
    };
    let n = env_usize("AIMQ_FED_SOURCES", 4).max(1);
    let failed = env_usize("AIMQ_FED_FAILED", 1).min(n);
    // Spread the hostile members around the ring (same policy as the
    // eval runner) so fragments keep a healthy replica while possible.
    let hostile: Vec<usize> = (0..failed).map(|j| j * n / failed.max(1)).collect();

    let h = harness();
    let baseline = |q: &ImpreciseQuery| {
        answer_keys(
            &h.system
                .answer(&InMemoryWebDb::new(h.relation.clone()), q, &config()),
        )
    };
    let fed = FederatedWebDb::shard(
        &h.relation,
        &specs(n, &hostile, 19),
        2,
        FederationPolicy::default(),
    )
    .unwrap();

    for q in &h.queries {
        let result = h.system.answer(&fed, q, &config());
        let d = &result.degradation;
        assert_eq!(d.sources.len(), n);
        let member_failures: u64 = d.sources.iter().map(|s| s.probes_failed).sum();
        if failed == 0 {
            assert_eq!(d.completeness, Completeness::Full, "{d:?}");
            assert_eq!(member_failures, 0);
            assert_eq!(answer_keys(&result), baseline(q));
        }
        if result.answers.is_empty() && d.is_degraded() {
            assert_eq!(d.completeness, Completeness::Empty);
        }
    }
}

/// Guarantee 4: the federation serves concurrently behind
/// `Arc<dyn WebDatabase>` — the worker pool's answers are
/// byte-identical to the single-threaded engine over the same members.
#[test]
fn federated_db_serves_concurrently_with_identical_answers() {
    let h = harness();
    let fed = FederatedWebDb::shard(
        &h.relation,
        &specs(4, &[], 3),
        2,
        FederationPolicy::default(),
    )
    .unwrap();
    let reference: Vec<Vec<String>> = h
        .queries
        .iter()
        .map(|q| ranking(&h.system.answer(&fed, q, &config())))
        .collect();

    let system = Arc::new(
        AimqSystem::train(&h.relation.random_sample(400, 5), &TrainConfig::default()).unwrap(),
    );
    let shared: Arc<dyn WebDatabase> = Arc::new(fed.clone());
    let server = QueryServer::start(
        system,
        shared,
        ServeConfig {
            workers: 4,
            queue_capacity: h.queries.len().max(1),
            deadline_ticks: 0,
            ticks_per_probe: 1,
            engine: config(),
        },
    );
    let tickets: Vec<Ticket> = h
        .queries
        .iter()
        .map(|q| server.submit(q.clone()).expect("log fits the queue"))
        .collect();
    let served: Vec<Vec<String>> = tickets
        .into_iter()
        .map(|t| ranking(&t.wait().expect("benign members never fail").answer))
        .collect();
    server.shutdown();

    assert_eq!(reference, served);
}
