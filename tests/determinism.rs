//! Run-to-run determinism regression for the mining stack.
//!
//! The paper's offline phase (AFD mining → attribute ordering →
//! supertuple bags → value-similarity matrices, plus the ROCK baseline)
//! must be a pure function of `(data, seed)`: two fits over the same
//! sampled CarDB have to produce byte-identical orderings and top-k
//! lists. The `cargo xtask lint` determinism rule (`hashmap`) keeps
//! iteration-order hazards out of `afd`/`sim`/`rock` at the source
//! level; this test pins the property at the output level so any future
//! hole (a new hash container behind an allow, an unstable sort) still
//! fails CI.

use aimq_suite::afd::{
    AttributeOrdering, BucketConfig, EncodedRelation, MinedDependencies, TaneConfig,
};
use aimq_suite::catalog::Domain;
use aimq_suite::data::CarDb;
use aimq_suite::rock::{RockConfig, RockModel};
use aimq_suite::sim::{build_supertuples, SimConfig, SimilarityModel};
use aimq_suite::storage::Relation;

/// One shared corpus: a 300-row simple random sample of a 600-row CarDB,
/// rebuilt from scratch per pass so nothing is accidentally shared.
fn sampled_cardb() -> Relation {
    CarDb::generate(600, 17).random_sample(300, 5)
}

fn mined(rel: &Relation) -> (EncodedRelation, MinedDependencies) {
    let enc = EncodedRelation::encode(rel, &BucketConfig::for_schema(rel.schema()));
    let mined = MinedDependencies::mine(&enc, &TaneConfig::default());
    (enc, mined)
}

#[test]
fn afd_mining_and_ordering_are_run_deterministic() {
    let (rel_a, rel_b) = (sampled_cardb(), sampled_cardb());
    let (_, mined_a) = mined(&rel_a);
    let (_, mined_b) = mined(&rel_b);

    // Byte-identical AFD and key lists, not merely set-equal.
    assert_eq!(
        format!("{:?}", mined_a.afds()),
        format!("{:?}", mined_b.afds())
    );
    assert_eq!(
        format!("{:?}", mined_a.keys()),
        format!("{:?}", mined_b.keys())
    );

    let ord_a = AttributeOrdering::derive(rel_a.schema(), &mined_a).unwrap();
    let ord_b = AttributeOrdering::derive(rel_b.schema(), &mined_b).unwrap();
    assert_eq!(ord_a.relaxation_order(), ord_b.relaxation_order());
    for attr in rel_a.schema().attr_ids() {
        // Bit-identical weights: same additions in the same order.
        assert_eq!(
            ord_a.importance(attr).to_bits(),
            ord_b.importance(attr).to_bits(),
            "importance of attr {attr:?} differs between runs"
        );
    }
}

#[test]
fn supertuple_bags_are_run_deterministic() {
    let (rel_a, rel_b) = (sampled_cardb(), sampled_cardb());
    let (enc_a, _) = mined(&rel_a);
    let (enc_b, _) = mined(&rel_b);
    for attr in rel_a.schema().attr_ids() {
        if rel_a.schema().domain(attr) != Domain::Categorical {
            continue;
        }
        let sup_a = build_supertuples(&enc_a, attr);
        let sup_b = build_supertuples(&enc_b, attr);
        assert_eq!(
            format!("{sup_a:?}"),
            format!("{sup_b:?}"),
            "supertuples of attr {attr:?} differ between runs"
        );
    }
}

#[test]
fn similarity_top_k_is_run_deterministic() {
    fn top_lists(rel: &Relation) -> Vec<String> {
        let (_, mined) = mined(rel);
        let ordering = AttributeOrdering::derive(rel.schema(), &mined).unwrap();
        let model = SimilarityModel::build(rel, &ordering, &SimConfig::for_schema(rel.schema()));
        let mut out = Vec::new();
        for attr in rel.schema().attr_ids() {
            let Some(matrix) = model.matrix(attr) else {
                continue;
            };
            for value in matrix.values() {
                out.push(format!("{value}: {:?}", matrix.top_similar(value, 5)));
            }
        }
        out
    }
    let (rel_a, rel_b) = (sampled_cardb(), sampled_cardb());
    assert_eq!(top_lists(&rel_a), top_lists(&rel_b));
}

#[test]
fn rock_fit_is_run_deterministic() {
    fn fit(rel: &Relation) -> RockModel {
        let (enc, _) = mined(rel);
        RockModel::fit(
            &enc,
            RockConfig {
                theta: 0.35,
                target_clusters: 8,
                sample_size: 150,
                seed: 5,
                min_cluster_size: 1,
            },
        )
    }
    let (rel_a, rel_b) = (sampled_cardb(), sampled_cardb());
    let (a, b) = (fit(&rel_a), fit(&rel_b));
    assert_eq!(a.clusters(), b.clusters());
    // Ranked answers (the user-visible top-k) must match too.
    for row in 0u32..20 {
        assert_eq!(
            format!("{:?}", a.answer(row, 10)),
            format!("{:?}", b.answer(row, 10)),
            "answer for row {row} differs between runs"
        );
    }
}

/// The schemas driving everything above must agree between passes — a
/// canary for nondeterminism in the generator itself, which would mask
/// (or fake) failures in the tests above.
#[test]
fn generator_is_seed_deterministic() {
    fn fingerprint(rel: &Relation) -> String {
        let mut s = String::new();
        for row in rel.rows().take(50) {
            s.push_str(&format!("{:?};", rel.tuple(row)));
        }
        s
    }
    assert_eq!(fingerprint(&sampled_cardb()), fingerprint(&sampled_cardb()));
}
