//! CI fault-matrix entry point: the whole probe → train → answer
//! pipeline under the fault profile named by `AIMQ_FAULT_PROFILE`
//! (`none` when unset). CI runs this test once per profile; the
//! guarantee is uniform across the matrix:
//!
//! * every failure surfaces as a typed error or a marked
//!   `DegradationReport` — no panics, no silently short samples, no
//!   unmarked empty answer sets.

use aimq_suite::catalog::{AttrId, ImpreciseQuery};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqError, AimqSystem, Completeness, EngineConfig, TrainConfig};
use aimq_suite::storage::{
    FaultInjectingWebDb, FaultProfile, InMemoryWebDb, ResilientWebDb, RetryPolicy, WebDatabase,
};

fn profile_under_test() -> FaultProfile {
    let name = std::env::var("AIMQ_FAULT_PROFILE").unwrap_or_else(|_| "none".to_owned());
    FaultProfile::by_name(&name)
        .unwrap_or_else(|| panic!("unknown AIMQ_FAULT_PROFILE `{name}` (none|flaky|hostile)"))
}

fn stacked_db(seed: u64) -> ResilientWebDb<FaultInjectingWebDb<InMemoryWebDb>> {
    ResilientWebDb::new(
        FaultInjectingWebDb::new(
            InMemoryWebDb::new(CarDb::generate(1200, 13)),
            profile_under_test(),
            seed,
        ),
        RetryPolicy::default(),
    )
}

#[test]
fn probe_train_answer_pipeline_degrades_gracefully() {
    let relation = CarDb::generate(1200, 13);
    let makes: Vec<String> = relation
        .column(AttrId(0))
        .dictionary()
        .expect("Make is categorical")
        .values()
        .iter()
        .map(String::clone)
        .collect();

    for seed in 0..4u64 {
        let db = stacked_db(seed);
        // Offline phase: either a trained system or a *typed* probe error.
        let system = match AimqSystem::probe_and_train(
            &db,
            AttrId(0),
            &makes,
            600,
            seed,
            &TrainConfig::default(),
        ) {
            Ok(system) => system,
            Err(AimqError::Probe(e)) => {
                // Legitimate under hostile profiles; the error names the
                // failing probe rather than returning a short sample.
                assert!(!e.to_string().is_empty());
                continue;
            }
            Err(other) => panic!("unexpected training failure: {other}"),
        };

        // Online phase: every answer carries an honest verdict.
        for i in 0..4u32 {
            let q = ImpreciseQuery::from_tuple(&relation.tuple(i * 61)).unwrap();
            let result = system.answer(&db, &q, &EngineConfig::default());
            let d = &result.degradation;
            let faulted = d.probes_failed > 0
                || d.probes_skipped > 0
                || d.truncated_pages > 0
                || d.source_lost;
            if result.answers.is_empty() && faulted {
                assert_eq!(d.completeness, Completeness::Empty);
            }
            if !faulted {
                assert_eq!(d.completeness, Completeness::Full);
            }
        }

        // The meter never lies: failures/retries are visible exactly when
        // the profile can inject them.
        let stats = db.stats();
        if profile_under_test().is_benign() {
            assert_eq!(stats.failures, 0, "benign profile reported failures");
            assert_eq!(stats.retries, 0);
        }
    }
}

#[test]
fn two_matrix_runs_are_deterministic() {
    let relation = CarDb::generate(1200, 13);
    let q = ImpreciseQuery::from_tuple(&relation.tuple(0)).unwrap();
    let run = || {
        let db = stacked_db(7);
        let sample = relation.random_sample(500, 3);
        let system = AimqSystem::train(&sample, &TrainConfig::default()).unwrap();
        let result = system.answer(&db, &q, &EngineConfig::default());
        let answers: Vec<String> = result
            .answers
            .iter()
            .map(|a| format!("{:?}@{:016x}", a.tuple, a.similarity.to_bits()))
            .collect();
        format!("{:?} | {}", result.degradation, answers.join(";"))
    };
    assert_eq!(run(), run());
}
