//! The tentpole guarantee of the HTTP front door: the wire path is
//! I/O-only. A search served over a real socket must produce a `result`
//! member **byte-identical** to the in-process engine's serialized
//! [`AnswerSet`] for the same query against an identically-built source
//! stack — same answers, same similarities, same degradation report,
//! same JSON bytes.

use std::sync::Arc;

use aimq_suite::catalog::{ImpreciseQuery, Json, Value};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, EngineConfig, TrainConfig};
use aimq_suite::http::{client, AimqHttpServer, HttpConfig};
use aimq_suite::serve::ServeConfig;
use aimq_suite::storage::{CachedWebDb, InMemoryWebDb, Relation, WebDatabase};

fn build_stack(relation: &Relation) -> Arc<dyn WebDatabase> {
    Arc::new(CachedWebDb::with_stripes(
        InMemoryWebDb::new(relation.clone()),
        1024,
        8,
    ))
}

/// The eval-suite query shape: each query binds every non-null
/// attribute of a probe tuple, in schema order — exactly the pairs the
/// HTTP body carries, so the wire and in-process paths see the same
/// bindings in the same order.
fn query_bindings(relation: &Relation, row: u32) -> Vec<(String, Value)> {
    let schema = relation.schema();
    let tuple = relation.tuple(row);
    schema
        .attributes()
        .iter()
        .enumerate()
        .filter_map(|(i, attr)| {
            let value = tuple.values().get(i)?;
            if matches!(value, Value::Null) {
                None
            } else {
                Some((attr.name().to_string(), value.clone()))
            }
        })
        .collect()
}

fn to_http_body(bindings: &[(String, Value)]) -> String {
    let pairs = bindings
        .iter()
        .map(|(name, value)| (name.clone(), value.to_json()))
        .collect();
    Json::Obj(vec![("query".to_string(), Json::Obj(pairs))]).to_string_compact()
}

fn to_query(relation: &Relation, bindings: &[(String, Value)]) -> ImpreciseQuery {
    let mut builder = ImpreciseQuery::builder(relation.schema());
    for (name, value) in bindings {
        builder = builder.like(name, value.clone()).expect("known attribute");
    }
    builder.build().expect("non-empty query")
}

#[test]
fn http_search_results_are_byte_identical_to_the_in_process_engine() {
    let relation = CarDb::generate(1200, 19);
    let sample = relation.random_sample(500, 3);
    let system = Arc::new(AimqSystem::train(&sample, &TrainConfig::default()).unwrap());
    let queries: Vec<Vec<(String, Value)>> = (0..5u32)
        .map(|i| query_bindings(&relation, i * 83))
        .collect();

    // Reference: the in-process engine replaying the suite serially on
    // a cold, identically-built stack.
    let reference: Vec<String> = {
        let stack = build_stack(&relation);
        queries
            .iter()
            .map(|bindings| {
                let q = to_query(&relation, bindings);
                system
                    .answer(&*stack, &q, &EngineConfig::default())
                    .to_json(relation.schema())
                    .to_string_compact()
            })
            .collect()
    };

    // Wire path: one worker, sequential requests — the same replay, but
    // every byte crosses a real socket.
    let server = AimqHttpServer::start(
        Arc::clone(&system),
        build_stack(&relation),
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            index: "cardb".to_string(),
            serve: ServeConfig {
                workers: 1,
                queue_capacity: 8,
                ..ServeConfig::default()
            },
        },
    )
    .expect("bind");

    for (bindings, expected) in queries.iter().zip(&reference) {
        let body = to_http_body(bindings);
        let reply = client::request(server.addr(), "POST", "/indexes/cardb/search", Some(&body))
            .expect("search reply");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let parsed = Json::parse(&reply.body).expect("response is JSON");
        let result = parsed
            .get("result")
            .expect("search response carries `result`");
        assert_eq!(
            &result.to_string_compact(),
            expected,
            "wire result must be byte-identical to the in-process answer"
        );
        assert_eq!(
            parsed.get("deadline_exceeded").and_then(Json::as_bool),
            Some(false)
        );
    }

    // Replaying a query on the warm stack changes cache traffic — and
    // therefore the meter-derived `stats` member — but not one byte of
    // the ranked answers, base query, or degradation report (the
    // comparable surface per `aimq-serve`'s determinism contract).
    if let (Some(bindings), Some(expected)) = (queries.first(), reference.first()) {
        let reply = client::request(
            server.addr(),
            "POST",
            "/indexes/cardb/search",
            Some(&to_http_body(bindings)),
        )
        .expect("repeat reply");
        let parsed = Json::parse(&reply.body).expect("response is JSON");
        let result = parsed.get("result").expect("result");
        let expected = Json::parse(expected).expect("reference is JSON");
        for member in ["answers", "base_query", "base_set_size", "degradation"] {
            assert_eq!(
                result.get(member).map(Json::to_string_compact),
                expected.get(member).map(Json::to_string_compact),
                "warm replay must preserve `{member}` byte-for-byte"
            );
        }
    }

    let final_stats = server.shutdown();
    assert_eq!(final_stats.completed, queries.len() as u64 + 1);
    assert_eq!(final_stats.replies_dropped, 0);
}
