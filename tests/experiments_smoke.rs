//! Smoke-level reproduction checks: run every paper experiment at a
//! reduced scale and assert the paper's *qualitative* claims — who wins,
//! what is stable — without pinning absolute numbers.

use aimq_suite::eval::experiments::{fig3, fig4, fig5, fig67, fig8, fig9, table2, table3};
use aimq_suite::eval::Scale;

const SEED: u64 = 42;

#[test]
fn table2_aimq_preprocessing_is_cheaper_than_rock() {
    // The cost crossover is asymptotic (ROCK's phases grow super-linearly
    // with the clustering sample); at 1/20 scale both systems finish in
    // milliseconds and the comparison is noise, so this claim is checked
    // at half scale.
    let r = table2::run(Scale::with_divisor(2), SEED);
    assert!(
        r.aimq_cheaper(),
        "AIMQ total must undercut ROCK total: CarDB {:?}/{:?}, Census {:?}/{:?}",
        r.cardb.aimq_total(),
        r.cardb.rock_total(),
        r.census.aimq_total(),
        r.census.rock_total()
    );
}

#[test]
fn fig3_attribute_dependence_ordering_is_sampling_robust() {
    let r = fig3::run(Scale::quick(), SEED);
    // Tiny samples overfit AFDs, so mid-ranking near-ties can swap; the
    // ends of the ordering — what to keep bound longest and what to relax
    // first — must agree at every size (full-scale runs also pass the
    // strict order_consistent check; see EXPERIMENTS.md).
    assert!(
        r.extremes_stable(),
        "most/least dependent attribute must be stable across samples"
    );
    // The planted structure: Make tops the dependence ranking.
    let full = r.sample_sizes.len() - 1;
    assert_eq!(r.attr_names[r.ranking(full)[0]], "Make");
}

#[test]
fn fig4_key_mining_is_sampling_robust() {
    let r = fig4::run(Scale::quick(), SEED);
    // Samples may miss a few low-quality keys, but they all agree on one
    // best key and the full relation's key contains it.
    assert!(
        r.samples_pick_core_of_full_key(),
        "best keys {:?}",
        r.best_key
    );
    let full = r.sample_sizes.len() - 1;
    assert_eq!(r.missing_in(full), 0);
}

#[test]
fn table3_similarity_estimation_is_sampling_robust() {
    let r = table3::run(Scale::quick(), SEED);
    // Every probe keeps at least one of its top-3 neighbors; on average
    // the lists overlap substantially. (Full-scale runs score higher; see
    // EXPERIMENTS.md.)
    assert!(
        r.top3_overlap_ok(1) && r.mean_top3_overlap() >= 1.5,
        "sample and full top-3 lists must substantially overlap: {:#?}",
        r.rows
    );
}

#[test]
fn fig5_mainstream_makes_cluster_and_luxury_stays_peripheral() {
    let r = fig5::run(Scale::quick(), SEED);
    let fc = r.sim("Ford", "Chevrolet").unwrap();
    let fb = r.sim("Ford", "BMW").unwrap();
    assert!(fc > fb, "Ford~Chevrolet {fc:.3} vs Ford~BMW {fb:.3}");
    assert!(!r.edges().is_empty());
}

#[test]
fn fig67_guided_relaxation_is_cheaper_than_random() {
    let r = fig67::run(Scale::quick(), SEED);
    let guided: f64 = r.guided.iter().sum();
    let random: f64 = r.random.iter().sum();
    assert!(
        guided <= random,
        "guided work {guided:.1} must not exceed random work {random:.1}"
    );
    // Work per relevant tuple can only grow (weakly) with the threshold
    // for the guided method — the paper's Figure 6 monotone shape.
    for w in r.guided.windows(2) {
        assert!(
            w[1] + 1e-9 >= w[0] * 0.5,
            "guided series collapsed: {:?}",
            r.guided
        );
    }
}

#[test]
fn fig8_guided_mrr_beats_random_and_rock() {
    let r = fig8::run(Scale::quick(), SEED);
    assert!(
        r.guided_wins(),
        "guided {:.3} vs random {:.3} vs rock {:.3}",
        r.guided_mrr,
        r.random_mrr,
        r.rock_mrr
    );
}

#[test]
fn fig9_aimq_dominates_rock_on_census() {
    let r = fig9::run(Scale::quick(), SEED);
    assert!(
        r.aimq_dominates(),
        "AIMQ {:?} must dominate ROCK {:?}",
        r.aimq,
        r.rock
    );
    // Accuracy should not degrade as k shrinks (the paper's "accuracy
    // increases as we reduce the number of similar answers").
    assert!(
        r.aimq.last().unwrap() + 0.05 >= r.aimq[0],
        "top-1 accuracy should be at least top-10 accuracy: {:?}",
        r.aimq
    );
}
