//! Cross-crate property tests on the similarity model: `VSim`/`Sim`
//! invariants that must hold for any mined relation.

use aimq_suite::afd::{AttributeOrdering, BucketConfig};
use aimq_suite::catalog::{AttrId, ImpreciseQuery, Schema, Tuple, Value};
use aimq_suite::sim::{SimConfig, SimilarityModel};
use aimq_suite::storage::Relation;
use proptest::prelude::*;

fn arb_relation() -> impl Strategy<Value = (Relation, Vec<(u32, u32, u32)>)> {
    prop::collection::vec((0u32..5, 0u32..4, 0u32..3), 2..100).prop_map(|rows| {
        let schema = Schema::builder("R")
            .categorical("X")
            .categorical("Y")
            .categorical("Z")
            .build()
            .unwrap();
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(x, y, z)| {
                Tuple::new(
                    &schema,
                    vec![
                        Value::cat(format!("x{x}")),
                        Value::cat(format!("y{y}")),
                        Value::cat(format!("z{z}")),
                    ],
                )
                .unwrap()
            })
            .collect();
        (Relation::from_tuples(schema, &tuples).unwrap(), rows)
    })
}

fn model_for(relation: &Relation) -> SimilarityModel {
    let ordering = AttributeOrdering::uniform(relation.schema()).unwrap();
    SimilarityModel::build(
        relation,
        &ordering,
        &SimConfig {
            bucket: BucketConfig::for_schema(relation.schema()),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn vsim_is_symmetric_bounded_and_reflexive((relation, rows) in arb_relation()) {
        let model = model_for(&relation);
        let distinct_x: Vec<String> = {
            let mut v: Vec<String> = rows.iter().map(|r| format!("x{}", r.0)).collect();
            v.sort();
            v.dedup();
            v
        };
        for a in &distinct_x {
            prop_assert_eq!(model.value_similarity(AttrId(0), a, a), 1.0);
            for b in &distinct_x {
                let ab = model.value_similarity(AttrId(0), a, b);
                let ba = model.value_similarity(AttrId(0), b, a);
                prop_assert!((ab - ba).abs() < 1e-12);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&ab), "vsim {}", ab);
            }
        }
    }

    #[test]
    fn query_similarity_bounded_and_exact_match_maximal((relation, _) in arb_relation()) {
        let model = model_for(&relation);
        let first = relation.tuple(0);
        let query = ImpreciseQuery::from_tuple(&first).unwrap();
        // The tuple itself scores 1.
        prop_assert!((model.query_similarity(&query, &first) - 1.0).abs() < 1e-9);
        // Everything scores within [0, 1] and no tuple beats the exact match.
        for t in relation.tuples() {
            let s = model.query_similarity(&query, &t);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s));
        }
    }

    #[test]
    fn tuple_similarity_agrees_with_query_similarity((relation, _) in arb_relation()) {
        // Treating a tuple as a query must equal tuple_similarity over
        // its bound attributes.
        let model = model_for(&relation);
        let base = relation.tuple(0);
        let query = ImpreciseQuery::from_tuple(&base).unwrap();
        let attrs: Vec<AttrId> = relation.schema().attr_ids().collect();
        for t in relation.tuples().take(20) {
            let a = model.query_similarity(&query, &t);
            let b = model.tuple_similarity(&base, &t, &attrs);
            prop_assert!((a - b).abs() < 1e-9, "query {} vs tuple {}", a, b);
        }
    }

    #[test]
    fn more_shared_values_never_hurt_similarity((relation, _) in arb_relation()) {
        // For a fixed query, a tuple agreeing on a superset of attributes
        // (equal values where the other differs, identical elsewhere)
        // scores at least as high.
        let model = model_for(&relation);
        let base = relation.tuple(0);
        let query = ImpreciseQuery::from_tuple(&base).unwrap();
        let schema = relation.schema().clone();
        for t in relation.tuples().take(10) {
            // Build t' = t with attribute 0 replaced by the query's value.
            let mut values = t.values().to_vec();
            values[0] = base.value(AttrId(0)).clone();
            let closer = Tuple::new(&schema, values).unwrap();
            let s_t = model.query_similarity(&query, &t);
            let s_closer = model.query_similarity(&query, &closer);
            prop_assert!(
                s_closer + 1e-9 >= s_t,
                "agreeing on one more attribute lowered similarity: {} -> {}",
                s_t,
                s_closer
            );
        }
    }
}
