//! Property tests on the ROCK baseline: structural invariants of the
//! clustering and labeling phases over random categorical relations.

use aimq_suite::afd::{BucketConfig, EncodedRelation};
use aimq_suite::catalog::{Schema, Tuple, Value};
use aimq_suite::rock::{RockConfig, RockModel};
use aimq_suite::storage::Relation;
use proptest::prelude::*;

fn encoded(rows: &[(u32, u32, u32)]) -> EncodedRelation {
    let schema = Schema::builder("R")
        .categorical("A")
        .categorical("B")
        .categorical("C")
        .build()
        .unwrap();
    let tuples: Vec<Tuple> = rows
        .iter()
        .map(|&(a, b, c)| {
            Tuple::new(
                &schema,
                vec![
                    Value::cat(format!("a{a}")),
                    Value::cat(format!("b{b}")),
                    Value::cat(format!("c{c}")),
                ],
            )
            .unwrap()
        })
        .collect();
    let relation = Relation::from_tuples(schema.clone(), &tuples).unwrap();
    EncodedRelation::encode(&relation, &BucketConfig::for_schema(&schema))
}

fn fit(rows: &[(u32, u32, u32)], theta: f64, sample: usize) -> RockModel {
    RockModel::fit(
        &encoded(rows),
        RockConfig {
            theta,
            target_clusters: 3,
            sample_size: sample,
            seed: 11,
            min_cluster_size: 1,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn clusters_partition_the_assigned_rows(
        rows in prop::collection::vec((0u32..3, 0u32..3, 0u32..4), 4..60),
        theta in 0.2f64..0.7,
    ) {
        let model = fit(&rows, theta, rows.len() / 2 + 1);
        // Every clustered row appears in exactly one cluster, and the
        // assignment map agrees with cluster membership.
        let mut seen = std::collections::HashSet::new();
        for (cid, members) in model.clusters().iter().enumerate() {
            for &row in members {
                prop_assert!(seen.insert(row), "row {row} in two clusters");
                prop_assert_eq!(model.assignment(row), Some(cid as u32));
            }
        }
        for row in 0..rows.len() as u32 {
            match model.assignment(row) {
                Some(cid) => prop_assert!(model.clusters()[cid as usize].contains(&row)),
                None => prop_assert!(!seen.contains(&row)),
            }
        }
    }

    #[test]
    fn answers_stay_within_the_cluster_and_are_ranked(
        rows in prop::collection::vec((0u32..3, 0u32..3, 0u32..4), 4..60),
    ) {
        let model = fit(&rows, 0.3, rows.len());
        for row in 0..rows.len() as u32 {
            let answers = model.answer(row, 5);
            prop_assert!(answers.len() <= 5);
            let cid = model.assignment(row);
            for w in answers.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
            for &(other, sim) in &answers {
                prop_assert_ne!(other, row, "answer includes the query row");
                prop_assert_eq!(model.assignment(other), cid);
                prop_assert!((0.0..=1.0).contains(&sim));
            }
        }
    }

    #[test]
    fn fitting_is_deterministic(
        rows in prop::collection::vec((0u32..3, 0u32..3, 0u32..4), 4..40),
    ) {
        let a = fit(&rows, 0.3, rows.len() / 2 + 1);
        let b = fit(&rows, 0.3, rows.len() / 2 + 1);
        prop_assert_eq!(a.clusters(), b.clusters());
    }

    #[test]
    fn identical_tuples_merge_into_one_cluster(
        base in (0u32..3, 0u32..3, 0u32..4),
        copies in 3usize..8,
    ) {
        // Three or more duplicates are all pairwise linked (every third
        // copy is a common neighbor of the other two), so with an
        // unlimited merge budget ROCK must collapse them into a single
        // cluster. Note the ROCK subtlety this test documents: *two*
        // isolated twins never merge — they have no common neighbor, so
        // their link count is zero.
        let rows = vec![base; copies];
        let model = RockModel::fit(
            &encoded(&rows),
            RockConfig {
                theta: 0.5,
                target_clusters: 1,
                sample_size: rows.len(),
                seed: 11,
                min_cluster_size: 1,
            },
        );
        prop_assert_eq!(model.clusters().len(), 1);
        prop_assert_eq!(model.clusters()[0].len(), copies);
    }

    #[test]
    fn two_isolated_twins_stay_singletons(
        base in (0u32..3, 0u32..3, 0u32..4),
    ) {
        let rows = vec![base; 2];
        let model = fit(&rows, 0.5, 2);
        // No common neighbor → link count 0 → no merge.
        prop_assert_eq!(model.clusters().len(), 2);
    }
}

/// Explicit replay of the saved regression in
/// `rock_invariants.proptest-regressions` (`shrinks to base = (0, 0, 0),
/// copies = 2, noise = []`): two identical tuples with no third copy have
/// no common neighbor, so their ROCK link count is zero and they must
/// stay singletons — an earlier nondeterministic merge order occasionally
/// glued them together. The vendored proptest stub does not consume
/// regression files, so the case is pinned here directly; the `cc` line
/// stays in version control for upstream proptest runs.
#[test]
fn regression_two_zero_twins_stay_singletons() {
    let rows = vec![(0, 0, 0); 2];
    let model = fit(&rows, 0.5, 2);
    assert_eq!(model.clusters().len(), 2, "{:?}", model.clusters());
    assert_eq!(model.clusters()[0].len(), 1);
    assert_eq!(model.clusters()[1].len(), 1);
    // And the fit is replay-stable: the same config yields the same
    // clusters every run (the deterministic-merge-order fix).
    let again = fit(&rows, 0.5, 2);
    assert_eq!(model.clusters(), again.clusters());
}
