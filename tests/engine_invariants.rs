//! Property tests on the full query engine: invariants that must hold
//! for arbitrary small databases and arbitrary imprecise queries.

use aimq_suite::catalog::{ImpreciseQuery, Schema, Tuple, Value};
use aimq_suite::engine::{AimqSystem, EngineConfig, Provenance, TrainConfig};
use aimq_suite::storage::{InMemoryWebDb, Relation};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::builder("R")
        .categorical("A")
        .categorical("B")
        .numeric("X")
        .build()
        .unwrap()
}

/// Strategy: a random relation (2..80 rows over small domains) plus a
/// random query (categorical binding + numeric binding).
fn arb_case() -> impl Strategy<Value = (Relation, ImpreciseQuery)> {
    (
        prop::collection::vec((0u32..5, 0u32..4, 0.0f64..100.0), 2..80),
        0u32..5,
        0.0f64..100.0,
    )
        .prop_map(|(rows, qa, qx)| {
            let schema = schema();
            let tuples: Vec<Tuple> = rows
                .iter()
                .map(|&(a, b, x)| {
                    Tuple::new(
                        &schema,
                        vec![
                            Value::cat(format!("a{a}")),
                            Value::cat(format!("b{b}")),
                            Value::num(x),
                        ],
                    )
                    .unwrap()
                })
                .collect();
            let relation = Relation::from_tuples(schema.clone(), &tuples).unwrap();
            let query = ImpreciseQuery::builder(&schema)
                .like("A", Value::cat(format!("a{qa}")))
                .unwrap()
                .like("X", Value::num(qx))
                .unwrap()
                .build()
                .unwrap();
            (relation, query)
        })
}

fn answer(
    relation: &Relation,
    query: &ImpreciseQuery,
    t_sim: f64,
    top_k: usize,
) -> (aimq_suite::engine::AnswerSet, InMemoryWebDb) {
    let db = InMemoryWebDb::new(relation.clone());
    let system = AimqSystem::train(relation, &TrainConfig::default()).unwrap();
    let result = system.answer(
        &db,
        query,
        &EngineConfig {
            t_sim,
            top_k,
            max_relax_level: 2,
            ..EngineConfig::default()
        },
    );
    (result, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn answers_come_from_the_database((relation, query) in arb_case()) {
        let (result, db) = answer(&relation, &query, 0.2, 50);
        let all: Vec<Tuple> = db.relation().tuples().collect();
        for a in &result.answers {
            prop_assert!(all.contains(&a.tuple), "answer not in source relation");
        }
    }

    #[test]
    fn ranking_is_sorted_bounded_and_capped((relation, query) in arb_case()) {
        let (result, _) = answer(&relation, &query, 0.3, 7);
        prop_assert!(result.answers.len() <= 7);
        for w in result.answers.windows(2) {
            prop_assert!(w[0].similarity >= w[1].similarity);
        }
        for a in &result.answers {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&a.similarity));
        }
    }

    #[test]
    fn no_duplicate_answers((relation, query) in arb_case()) {
        let (result, _) = answer(&relation, &query, 0.1, 100);
        let mut seen = std::collections::HashSet::new();
        for a in &result.answers {
            prop_assert!(seen.insert(a.tuple.clone()), "duplicate answer");
        }
    }

    #[test]
    fn provenance_is_internally_consistent((relation, query) in arb_case()) {
        let (result, _) = answer(&relation, &query, 0.2, 100);
        for a in &result.answers {
            match &a.provenance {
                Provenance::BaseSet => {
                    prop_assert!(result.base_query.matches(&a.tuple));
                }
                Provenance::Relaxed { base_index, relaxed_attrs } => {
                    prop_assert!(*base_index < result.base_set_size);
                    prop_assert!(!relaxed_attrs.is_empty());
                    prop_assert!(relaxed_attrs.iter().all(|a| a.index() < 3));
                }
                Provenance::External => prop_assert!(false, "engine emitted External"),
            }
        }
    }

    #[test]
    fn raising_the_threshold_never_finds_more((relation, query) in arb_case()) {
        let (loose, _) = answer(&relation, &query, 0.2, 1000);
        let (tight, _) = answer(&relation, &query, 0.8, 1000);
        prop_assert!(tight.stats.relevant_found <= loose.stats.relevant_found);
    }

    #[test]
    fn engine_is_deterministic((relation, query) in arb_case()) {
        let (a, _) = answer(&relation, &query, 0.3, 20);
        let (b, _) = answer(&relation, &query, 0.3, 20);
        let key = |r: &aimq_suite::engine::AnswerSet| -> Vec<String> {
            r.answers
                .iter()
                .map(|x| format!("{:?}|{:.9}", x.tuple, x.similarity))
                .collect()
        };
        prop_assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn exact_match_query_puts_the_tuple_first((relation, _) in arb_case()) {
        // Query a tuple that exists: it must rank first with similarity 1.
        let target = relation.tuple(0);
        let query = ImpreciseQuery::from_tuple(&target).unwrap();
        let (result, _) = answer(&relation, &query, 0.2, 10);
        prop_assert!(!result.answers.is_empty());
        prop_assert!((result.answers[0].similarity - 1.0).abs() < 1e-9);
        // The target itself is among the maximal-similarity answers.
        let top_sim = result.answers[0].similarity;
        prop_assert!(result
            .answers
            .iter()
            .take_while(|a| (a.similarity - top_sim).abs() < 1e-9)
            .any(|a| a.tuple == target));
    }

    #[test]
    fn work_stats_are_coherent((relation, query) in arb_case()) {
        let (result, db) = answer(&relation, &query, 0.3, 20);
        // Examined tuples are distinct, so never more than the relation.
        prop_assert!(result.stats.tuples_examined <= db.relation().len());
        // Raw extraction counts duplicates, so it is at least examined.
        prop_assert!(result.stats.tuples_extracted as usize >= result.stats.tuples_examined
            || result.stats.tuples_extracted == 0);
        // Relevant answers all come from examined tuples.
        prop_assert!(result.stats.relevant_found <= result.stats.tuples_examined);
    }
}

#[test]
fn result_limited_interface_still_answers() {
    // A form interface that only returns the first 3 matches per query:
    // AIMQ degrades gracefully (fewer answers, no failures).
    let schema = schema();
    let tuples: Vec<Tuple> = (0..40)
        .map(|i| {
            Tuple::new(
                &schema,
                vec![
                    Value::cat(format!("a{}", i % 3)),
                    Value::cat(format!("b{}", i % 4)),
                    Value::num(f64::from(i)),
                ],
            )
            .unwrap()
        })
        .collect();
    let relation = Relation::from_tuples(schema.clone(), &tuples).unwrap();
    let db = InMemoryWebDb::new(relation.clone()).with_result_limit(3);
    let system = AimqSystem::train(&relation, &TrainConfig::default()).unwrap();
    let query = ImpreciseQuery::builder(&schema)
        .like("A", Value::cat("a1"))
        .unwrap()
        .build()
        .unwrap();
    let result = system.answer(
        &db,
        &query,
        &EngineConfig {
            t_sim: 0.2,
            ..EngineConfig::default()
        },
    );
    assert!(!result.answers.is_empty());
    // Every single query returned at most 3 tuples.
    assert!(result.stats.tuples_extracted <= 3 * result.stats.queries_issued);
}
