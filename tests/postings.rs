//! End-to-end guarantees of the posting-list executor and shared-plan
//! evaluation (ISSUE 8):
//!
//! 1. **executor identity** — over generated relations (categorical +
//!    numeric columns, nulls and NaN rows) and generated selection
//!    queries (duplicate predicates on one attribute included), the
//!    posting-list executor, the legacy hash/range executor and a naive
//!    full scan return byte-identical row sets, and a shared
//!    [`PlanExecutor`] answers every plan member exactly like the
//!    one-shot path;
//! 2. **decorator transparency** — `try_query_plan` through the
//!    `Cached(Resilient(FaultInjecting(InMemory)))` stack returns
//!    exactly what the sequential `try_query` loop returns (pages,
//!    errors, early termination *and* meter state), for every fault
//!    profile and seed;
//! 3. **federation transparency** — a replicated federation answers
//!    plans exactly like its per-query loop, and (benign members) like
//!    the single-source union relation, for every replication factor;
//! 4. **engine identity** — `EngineConfig::batch_plans` is invisible
//!    end to end: ranked answers and `DegradationReport` are
//!    byte-identical with batching on and off through the full
//!    decorator stack under every fault profile.

use std::sync::OnceLock;

use aimq_suite::catalog::{
    AttrId, ImpreciseQuery, Predicate, PredicateOp, Schema, SelectionQuery, Tuple, Value,
};
use aimq_suite::data::CarDb;
use aimq_suite::engine::{AimqSystem, AnswerSet, EngineConfig, TrainConfig};
use aimq_suite::storage::{
    execute_rows, execute_rows_legacy, CachedWebDb, FaultInjectingWebDb, FaultProfile,
    FederatedWebDb, FederationPolicy, InMemoryWebDb, PlanExecutor, QueryError, QueryPage, Relation,
    ResilientWebDb, RetryPolicy, RowId, SourceSpec, WebDatabase,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Guarantee 1: executor identity on generated relations and queries.
// ---------------------------------------------------------------------

fn gen_schema() -> &'static Schema {
    static S: OnceLock<Schema> = OnceLock::new();
    S.get_or_init(|| {
        Schema::builder("postings-prop")
            .categorical("make")
            .categorical("color")
            .numeric("price")
            .numeric("miles")
            .build()
            .expect("static schema is well formed")
    })
}

/// Categorical pool: a few clashing values, plus `Null`.
fn cat_value(code: u8) -> Value {
    match code % 5 {
        0 => Value::cat("a"),
        1 => Value::cat("b"),
        2 => Value::cat("c"),
        3 => Value::cat("d"),
        _ => Value::Null,
    }
}

/// Numeric *data* pool: finite values only (the legacy executor's
/// half-open range drivers are exact on finite data), but with signed
/// zeros, repeats and `Null`/NaN rows — NaN rows are excluded from the
/// sorted index at build time and decode to `Null`, so every executor
/// must agree they match nothing.
fn num_data_value(code: u8) -> Value {
    match code % 9 {
        0 => Value::num(-1e9),
        1 => Value::num(-3.0),
        2 => Value::num(-0.0),
        3 => Value::num(0.0),
        4 => Value::num(1.5),
        5 => Value::num(1.5),
        6 => Value::num(42.0),
        7 => Value::Null,
        _ => Value::num(f64::NAN),
    }
}

/// Numeric *predicate* pool: includes non-finite constants and values
/// off the data grid.
fn num_query_value(code: u8) -> Value {
    match code % 9 {
        0 => Value::num(-1e9),
        1 => Value::num(-0.0),
        2 => Value::num(0.0),
        3 => Value::num(1.5),
        4 => Value::num(2.0),
        5 => Value::num(f64::NEG_INFINITY),
        6 => Value::num(f64::INFINITY),
        7 => Value::num(f64::NAN),
        _ => Value::num(42.0),
    }
}

fn op_of(code: u8) -> PredicateOp {
    match code % 5 {
        0 => PredicateOp::Eq,
        1 => PredicateOp::Lt,
        2 => PredicateOp::Le,
        3 => PredicateOp::Gt,
        _ => PredicateOp::Ge,
    }
}

/// A predicate from three bytes: attribute, operator, value code. The
/// value pool deliberately ignores the attribute's domain sometimes
/// (categorical constant on a numeric column and vice versa), which
/// every executor must resolve to the empty set identically.
fn gen_predicate(attr: u8, op: u8, value: u8) -> Predicate {
    let attr = AttrId(attr as usize % 4);
    let value = if value % 11 == 10 {
        // occasional cross-domain constant
        if attr.index() < 2 {
            num_query_value(value)
        } else {
            cat_value(value)
        }
    } else if attr.index() < 2 {
        match value % 6 {
            5 => Value::cat("unseen"),
            v => cat_value(v),
        }
    } else {
        num_query_value(value)
    };
    Predicate {
        attr,
        op: op_of(op),
        value,
    }
}

fn gen_relation(row_codes: &[(u8, u8, u8, u8)]) -> Relation {
    let schema = gen_schema();
    let tuples: Vec<Tuple> = row_codes
        .iter()
        .map(|&(a, b, c, d)| {
            Tuple::new(
                schema,
                vec![
                    cat_value(a),
                    cat_value(b),
                    num_data_value(c),
                    num_data_value(d),
                ],
            )
            .expect("arity matches the static schema")
        })
        .collect();
    Relation::from_tuples(schema.clone(), &tuples).expect("generated tuples fit the schema")
}

/// The naive reference: decode every row and apply the query AST.
fn scan(relation: &Relation, query: &SelectionQuery) -> Vec<RowId> {
    relation
        .rows()
        .filter(|&row| query.matches(&relation.tuple(row)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Posting-list executor == legacy executor == naive scan, and the
    /// answer is invariant under predicate duplication and permutation.
    #[test]
    fn three_way_executor_identity(
        rows in proptest::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 0..40),
        preds in proptest::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255), 0..6),
    ) {
        let relation = gen_relation(&rows);
        let predicates: Vec<Predicate> = preds
            .iter()
            .map(|&(a, o, v)| gen_predicate(a, o, v))
            .collect();
        let query = SelectionQuery::new(predicates.clone());

        let expected = scan(&relation, &query);
        prop_assert_eq!(&execute_rows(&relation, &query), &expected);
        prop_assert_eq!(&execute_rows_legacy(&relation, &query), &expected);

        // Duplicating the whole predicate list (duplicate predicates on
        // one attribute, by construction) must change nothing.
        let doubled = SelectionQuery::new(
            predicates.iter().chain(predicates.iter()).cloned().collect(),
        );
        prop_assert_eq!(&execute_rows(&relation, &doubled), &expected);
        prop_assert_eq!(&execute_rows_legacy(&relation, &doubled), &expected);

        // Reversing predicate order must change nothing either.
        let reversed =
            SelectionQuery::new(predicates.iter().rev().cloned().collect());
        prop_assert_eq!(&execute_rows(&relation, &reversed), &expected);
        prop_assert_eq!(&execute_rows_legacy(&relation, &reversed), &expected);
    }

    /// A shared `PlanExecutor` answers every member of a plan exactly
    /// like the one-shot executor, while sharing work: terms are never
    /// evaluated more often than there are distinct (attr-group, plan)
    /// pairs.
    #[test]
    fn shared_plan_matches_one_shot_execution(
        rows in proptest::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 0..30),
        plan in proptest::collection::vec(
            proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 0..4),
            1..6),
    ) {
        let relation = gen_relation(&rows);
        let queries: Vec<SelectionQuery> = plan
            .iter()
            .map(|preds| {
                SelectionQuery::new(
                    preds.iter().map(|&(a, o, v)| gen_predicate(a, o, v)).collect(),
                )
            })
            .collect();

        let mut exec = PlanExecutor::new(&relation);
        for query in &queries {
            prop_assert_eq!(&exec.execute(query), &execute_rows(&relation, query));
        }
        let stats = exec.stats();
        prop_assert_eq!(stats.queries_executed, queries.len() as u64);
        // Memoization can only save work, never add it.
        prop_assert!(stats.intersections_computed <= stats.terms_evaluated);
    }
}

// ---------------------------------------------------------------------
// Guarantees 2-4 run over a shared CarDB harness.
// ---------------------------------------------------------------------

struct Harness {
    relation: Relation,
    system: AimqSystem,
    queries: Vec<ImpreciseQuery>,
    /// Selection-query plans with deliberate duplicates, derived from
    /// relation tuples (so they are non-trivially satisfiable).
    plans: Vec<Vec<SelectionQuery>>,
}

fn harness() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| {
        let relation = CarDb::generate(900, 23);
        let sample = relation.random_sample(400, 5);
        let system = AimqSystem::train(&sample, &TrainConfig::default())
            .expect("training on a CarDB sample succeeds");
        let step = (relation.len() / 4).max(1) as u32;
        let queries: Vec<ImpreciseQuery> = (0..4u32)
            .map(|i| {
                ImpreciseQuery::from_tuple(&relation.tuple(i * step))
                    .expect("CarDB tuples bind every attribute")
            })
            .collect();
        let plans = (0..4u32)
            .map(|i| plan_for_tuple(&relation, i * step))
            .collect();
        Harness {
            relation,
            system,
            queries,
            plans,
        }
    })
}

/// A relaxation-shaped plan for one base tuple: the fully bound query,
/// each single-attribute relaxation, then the fully bound query again
/// (a deliberate duplicate, as produced by overlapping per-tuple plans).
fn plan_for_tuple(relation: &Relation, row: RowId) -> Vec<SelectionQuery> {
    let tuple = relation.tuple(row);
    let full: Vec<Predicate> = tuple
        .values()
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_null())
        .map(|(i, v)| Predicate::eq(AttrId(i), v.clone()))
        .collect();
    let base = SelectionQuery::new(full.clone()).canonicalize();
    let mut plan = vec![base.clone()];
    for drop in 0..full.len() {
        let kept: Vec<Predicate> = full
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != drop)
            .map(|(_, p)| p.clone())
            .collect();
        plan.push(SelectionQuery::new(kept).canonicalize());
    }
    plan.push(base);
    plan
}

fn config() -> EngineConfig {
    EngineConfig {
        t_sim: 0.5,
        top_k: 10,
        ..EngineConfig::default()
    }
}

fn profile_at(idx: usize) -> FaultProfile {
    [
        FaultProfile::none(),
        FaultProfile::flaky(),
        FaultProfile::hostile(),
    ][idx % 3]
}

type FullStack = CachedWebDb<ResilientWebDb<FaultInjectingWebDb<InMemoryWebDb>>>;

/// A fresh `Cached(Resilient(FaultInjecting(InMemory)))` stack; the
/// fault schedule restarts at ordinal zero, so two stacks built with the
/// same profile and seed see identical fates for identical query
/// sequences.
fn full_stack(profile: FaultProfile, fault_seed: u64) -> FullStack {
    CachedWebDb::with_default_capacity(ResilientWebDb::new(
        FaultInjectingWebDb::new(
            InMemoryWebDb::new(harness().relation.clone()),
            profile,
            fault_seed,
        ),
        RetryPolicy::default(),
    ))
}

/// The sequential reference for `try_query_plan`: query at a time,
/// stopping after the first terminal (non-retryable) error.
fn sequential_plan(
    db: &dyn WebDatabase,
    plan: &[SelectionQuery],
) -> Vec<Result<QueryPage, QueryError>> {
    let mut out = Vec::with_capacity(plan.len());
    for query in plan {
        let result = db.try_query(query);
        let terminal = matches!(&result, Err(e) if !e.is_retryable());
        out.push(result);
        if terminal {
            break;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Guarantee 2: through the full decorator stack, `try_query_plan`
    /// is byte-identical to the sequential loop — same pages, same
    /// errors, same early termination, and the same cache/probe meters
    /// afterwards — for every fault profile and seed.
    #[test]
    fn plan_is_transparent_through_the_decorator_stack(
        fault_seed in 0u64..=u64::MAX,
        profile_idx in 0usize..3,
        plan_idx in 0usize..4,
    ) {
        let h = harness();
        let plan = &h.plans[plan_idx];

        let plan_db = full_stack(profile_at(profile_idx), fault_seed);
        let batched = plan_db.try_query_plan(plan);

        let loop_db = full_stack(profile_at(profile_idx), fault_seed);
        let sequential = sequential_plan(&loop_db, plan);

        prop_assert_eq!(&batched, &sequential);
        prop_assert_eq!(
            format!("{:?}", plan_db.stats()),
            format!("{:?}", loop_db.stats()),
            "plan path left different meter state"
        );
    }

    /// Guarantee 4: `batch_plans` is invisible end to end — ranked
    /// answers and degradation reports are byte-identical with batching
    /// on and off, through the full stack, under every fault profile.
    #[test]
    fn batched_engine_is_byte_identical_through_the_stack(
        fault_seed in 0u64..=u64::MAX,
        profile_idx in 0usize..3,
        query_idx in 0usize..4,
    ) {
        let h = harness();
        let q = &h.queries[query_idx];
        let run = |batch: bool| -> AnswerSet {
            let db = full_stack(profile_at(profile_idx), fault_seed);
            let cfg = EngineConfig {
                batch_plans: batch,
                ..config()
            };
            h.system.answer(&db, q, &cfg)
        };
        prop_assert_eq!(fingerprint(&run(true)), fingerprint(&run(false)));
    }
}

/// Everything observable about a run, byte-exact (`f64` via `to_bits`).
fn fingerprint(result: &AnswerSet) -> String {
    let answers: Vec<String> = result
        .answers
        .iter()
        .map(|a| format!("{:?}@{:016x}", a.tuple, a.similarity.to_bits()))
        .collect();
    format!("{:?} | {}", result.degradation, answers.join(";"))
}

/// Guarantee 3: a replicated federation answers plans exactly like its
/// own per-query loop, and — with benign members — exactly like the
/// single-source union relation, for every replication factor.
#[test]
fn replicated_federation_answers_plans_like_its_query_loop() {
    let h = harness();
    // The federator merges pages in canonical value order after dedup,
    // so the single-source baseline must present the same order and
    // multiplicity: a value-sorted, deduplicated union relation.
    let mut by_values: std::collections::BTreeMap<Vec<Value>, Tuple> =
        std::collections::BTreeMap::new();
    for row in h.relation.rows() {
        let tuple = h.relation.tuple(row);
        by_values.entry(tuple.values().to_vec()).or_insert(tuple);
    }
    let tuples: Vec<Tuple> = by_values.into_values().collect();
    let union = Relation::from_tuples(h.relation.schema().clone(), &tuples)
        .expect("deduplicated CarDB rows still fit the schema");
    let single = InMemoryWebDb::new(union.clone());
    let plans: Vec<Vec<SelectionQuery>> = (0..3u32)
        .map(|i| plan_for_tuple(&union, i * (union.len() as u32 / 3).max(1)))
        .collect();

    for replication in 1usize..=3 {
        let specs: Vec<SourceSpec> = (0..4)
            .map(|i| SourceSpec::benign(format!("s{i}")))
            .collect();
        let fed = FederatedWebDb::shard(&union, &specs, replication, FederationPolicy::default())
            .expect("4 benign members shard cleanly");
        for plan in &plans {
            let batched = fed.try_query_plan(plan);
            assert_eq!(
                batched,
                sequential_plan(&fed, plan),
                "replication={replication}: plan diverged from the query loop"
            );
            // Benign federation == single source, member count and
            // replication notwithstanding.
            assert_eq!(
                batched,
                sequential_plan(&single, plan),
                "replication={replication}: federation diverged from the union relation"
            );
        }
    }
}

/// Faulty replicated federations stay plan-transparent too: whatever a
/// hostile member does to individual probes, handing the whole plan over
/// changes nothing (same pages, same errors, same truncation).
#[test]
fn faulty_federation_is_plan_transparent() {
    let h = harness();
    for (hostile, fault_seed) in [(0usize, 3u64), (1, 7), (2, 19)] {
        let specs: Vec<SourceSpec> = (0..4)
            .map(|i| SourceSpec {
                profile: if i == hostile {
                    FaultProfile::hostile()
                } else {
                    FaultProfile::none()
                },
                fault_seed: fault_seed.wrapping_add(i as u64),
                ..SourceSpec::benign(format!("s{i}"))
            })
            .collect();
        for plan in &h.plans {
            let plan_fed =
                FederatedWebDb::shard(&h.relation, &specs, 2, FederationPolicy::default())
                    .expect("4 members shard cleanly");
            let batched = plan_fed.try_query_plan(plan);
            let loop_fed =
                FederatedWebDb::shard(&h.relation, &specs, 2, FederationPolicy::default())
                    .expect("4 members shard cleanly");
            assert_eq!(
                batched,
                sequential_plan(&loop_fed, plan),
                "hostile member {hostile}: plan diverged from the query loop"
            );
        }
    }
}
